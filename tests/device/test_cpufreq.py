"""Unit tests for the cpufreq policy layer."""

import pytest

from repro.core.engine import Engine
from repro.core.errors import GovernorError
from repro.device.cpu import CpuCore
from repro.device.cpufreq import RELATION_HIGH, RELATION_LOW, CpuFreqPolicy
from repro.device.frequencies import snapdragon_8074_table


@pytest.fixture
def setup():
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    policy = CpuFreqPolicy(engine.clock, core)
    return engine, core, policy


def test_relation_low_resolves_to_floor(setup):
    _engine, core, policy = setup
    applied = policy.set_target(1_000_000, RELATION_LOW)
    assert applied == 960_000
    assert core.frequency_khz == 960_000


def test_relation_high_resolves_to_ceil(setup):
    _engine, _core, policy = setup
    assert policy.set_target(1_000_000, RELATION_HIGH) == 1_036_800


def test_target_clamped_to_policy_limits(setup):
    _engine, _core, policy = setup
    assert policy.set_target(10_000_000, RELATION_HIGH) == policy.max_khz
    assert policy.set_target(1, RELATION_LOW) == policy.min_khz


def test_unknown_relation_rejected(setup):
    _engine, _core, policy = setup
    with pytest.raises(GovernorError):
        policy.set_target(960_000, "sideways")


def test_custom_limits_narrow_the_range():
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    policy = CpuFreqPolicy(
        engine.clock, core, min_khz=652_800, max_khz=1_497_600
    )
    assert policy.set_target(300_000, RELATION_LOW) == 652_800
    assert policy.set_target(2_150_400, RELATION_HIGH) == 1_497_600


def test_inverted_limits_rejected():
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    with pytest.raises(GovernorError):
        CpuFreqPolicy(engine.clock, core, min_khz=1_497_600, max_khz=652_800)


def test_transition_trace_records_timestamps(setup):
    engine, _core, policy = setup
    engine.clock.advance_to(100)
    policy.set_target(960_000, RELATION_LOW)
    engine.clock.advance_to(200)
    policy.set_target(2_150_400, RELATION_HIGH)
    times = [(t.timestamp, t.freq_khz) for t in policy.transitions]
    assert times == [(0, 300_000), (100, 960_000), (200, 2_150_400)]


def test_no_transition_recorded_for_same_frequency(setup):
    _engine, _core, policy = setup
    policy.set_target(300_000, RELATION_LOW)
    assert len(policy.transitions) == 1


def test_observers_fire_on_transition(setup):
    engine, _core, policy = setup
    seen = []
    policy.add_transition_observer(lambda t, khz: seen.append((t, khz)))
    engine.clock.advance_to(50)
    policy.set_target(960_000, RELATION_LOW)
    assert seen == [(50, 960_000)]


def test_frequency_at_historical_lookup(setup):
    engine, _core, policy = setup
    engine.clock.advance_to(100)
    policy.set_target(960_000, RELATION_LOW)
    engine.clock.advance_to(300)
    policy.set_target(2_150_400, RELATION_HIGH)
    assert policy.frequency_at(50) == 300_000
    assert policy.frequency_at(150) == 960_000
    assert policy.frequency_at(300) == 2_150_400

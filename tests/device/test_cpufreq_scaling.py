"""Scaling regression tests for the cpufreq trace queries.

The seed implementation scanned the whole transition list per
``frequency_at`` call — quadratic over a run for the oracle/energy
callers.  These tests pin the bisect fast path: a synthetic
10k-transition policy must answer 10k point queries in far less time than
any linear scan could (a linear implementation needs ~50M comparisons
here; bisect needs ~140k).
"""

import time

from repro.core.engine import Engine
from repro.device.cpu import CpuCore
from repro.device.cpufreq import CpuFreqPolicy
from repro.device.frequencies import snapdragon_8074_table
from repro.oracle.profile import FrequencyProfile

TRANSITIONS = 10_000
QUERIES = 10_000


def build_policy():
    engine = Engine()
    table = snapdragon_8074_table()
    core = CpuCore(engine.clock, table)
    policy = CpuFreqPolicy(engine.clock, core)
    freqs = table.frequencies_khz
    for index in range(TRANSITIONS):
        engine.clock.advance_to((index + 1) * 100)
        policy.set_target(freqs[index % len(freqs)])
    return policy


def test_frequency_at_matches_linear_reference():
    policy = build_policy()
    pairs = policy.transition_pairs()

    def linear_reference(timestamp):
        result = pairs[0][1]
        for t, khz in pairs:
            if t > timestamp:
                break
            result = khz
        return result

    for timestamp in (0, 1, 99, 100, 101, 4_999, 5_000, 500_000, 999_999,
                      TRANSITIONS * 100 + 1):
        assert policy.frequency_at(timestamp) == linear_reference(timestamp)


def test_transition_heavy_queries_stay_subquadratic():
    policy = build_policy()
    span = TRANSITIONS * 100
    start = time.perf_counter()
    checksum = 0
    for index in range(QUERIES):
        checksum += policy.frequency_at((index * 7919) % span)
    elapsed = time.perf_counter() - start
    assert checksum > 0
    # Bisect completes in ~20ms even on slow CI; the seed's linear scan
    # took ~1s on a fast machine and several seconds on CI.
    assert elapsed < 1.5, (
        f"frequency_at looks super-logarithmic again: {QUERIES} queries "
        f"over {TRANSITIONS} transitions took {elapsed:.2f}s"
    )


def test_profile_series_subquadratic():
    """FrequencyProfile.frequency_at (oracle/figures path) also bisects."""
    pairs = [(index * 100, 300_000 + (index % 14) * 1_000)
             for index in range(TRANSITIONS)]
    profile = FrequencyProfile.from_transitions(pairs, TRANSITIONS * 100)
    start = time.perf_counter()
    xs, ys = profile.series(step_us=100)
    elapsed = time.perf_counter() - start
    assert len(xs) == TRANSITIONS
    assert elapsed < 1.5, f"profile series took {elapsed:.2f}s"


def test_transition_pairs_and_objects_agree():
    policy = build_policy()
    objects = policy.transitions
    pairs = policy.transition_pairs()
    # The first set_target re-targets the frequency the core booted at,
    # so it records no transition: initial entry + (TRANSITIONS - 1).
    assert len(objects) == len(pairs) == TRANSITIONS
    assert [(t.timestamp, t.freq_khz) for t in objects] == pairs

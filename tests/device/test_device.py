"""Tests for the assembled Device facade."""

import pytest

from repro.core.errors import GovernorError
from repro.core.simtime import seconds
from repro.device.device import (
    DEFAULT_SCREEN_HEIGHT,
    DEFAULT_SCREEN_WIDTH,
    TOUCHSCREEN_PATH,
    Device,
    DeviceConfig,
)
from repro.device.power import PowerModel


def test_default_configuration(device):
    assert device.display.width == DEFAULT_SCREEN_WIDTH
    assert device.display.height == DEFAULT_SCREEN_HEIGHT
    assert len(device.cpu.table) == 14
    assert device.input_subsystem.node(TOUCHSCREEN_PATH) is device.touchscreen.node


def test_governor_lifecycle(device):
    governor = device.set_governor("ondemand")
    assert governor.active
    replacement = device.set_governor("performance")
    assert not governor.active
    assert replacement.active
    assert device.policy.current_khz == device.policy.max_khz
    device.stop_governor()
    assert device.governor is None


def test_fixed_governor_shorthand(device):
    device.set_governor("fixed:1497600")
    assert device.policy.current_khz == 1_497_600


def test_governor_tunables_forwarded(device):
    governor = device.set_governor("ondemand", up_threshold=60)
    assert governor.up_threshold == 60


def test_run_for_advances_time(device):
    device.run_for(seconds(5))
    assert device.engine.now == seconds(5)


def test_run_for_negative_rejected(device):
    with pytest.raises(GovernorError):
        device.run_for(-1)


def test_frequency_change_reschedules_running_task(device):
    from repro.kernel.task import Task

    device.set_governor("fixed:300000")
    done = []
    device.scheduler.submit(
        Task("t", 600e6, on_complete=lambda t: done.append(device.engine.now))
    )
    device.engine.schedule_at(
        seconds(1), lambda: device.set_governor("fixed:2150400")
    )
    device.run_for(seconds(3))
    # 1 s at 0.3 GHz + remaining 300e6 at 2.1504 GHz.
    assert done[0] == pytest.approx(1_139_509, abs=10)


def test_custom_power_model(device):
    custom = DeviceConfig(power_model=PowerModel(idle_w=0.0, active_base_w=0.01))
    dev = Device(custom)
    dev.run_for(seconds(10))
    assert dev.cpu.energy_joules() == pytest.approx(0.0)


def test_custom_screen_size():
    dev = Device(DeviceConfig(screen_width=40, screen_height=60))
    assert dev.display.framebuffer.shape == (60, 40)

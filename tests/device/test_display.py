"""Unit tests for the display and vsync composition."""

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.core.errors import CaptureError
from repro.device.display import (
    VSYNC_PERIOD_US,
    Display,
    frame_index_at,
    frame_timestamp,
)


def test_frame_index_math():
    assert frame_index_at(0) == 0
    assert frame_index_at(VSYNC_PERIOD_US - 1) == 0
    assert frame_index_at(VSYNC_PERIOD_US) == 1
    assert frame_timestamp(3) == 3 * VSYNC_PERIOD_US


def test_invalid_dimensions_rejected():
    with pytest.raises(CaptureError):
        Display(Engine(), 0, 10)


def test_no_composition_without_invalidate():
    engine = Engine()
    display = Display(engine, 8, 8)
    engine.run_until(10 * VSYNC_PERIOD_US)
    assert display.frames_composed == 0


def test_invalidate_composes_on_next_vsync():
    engine = Engine()
    display = Display(engine, 8, 8)
    composed = []
    display.set_composer(lambda fb: composed.append(engine.now))
    display.invalidate()
    engine.run_until(2 * VSYNC_PERIOD_US)
    assert composed == [VSYNC_PERIOD_US]


def test_multiple_invalidates_coalesce_into_one_frame():
    engine = Engine()
    display = Display(engine, 8, 8)
    display.set_composer(lambda fb: None)
    display.invalidate()
    display.invalidate()
    display.invalidate()
    engine.run_until(2 * VSYNC_PERIOD_US)
    assert display.frames_composed == 1


def test_observers_get_frame_index_and_copy():
    engine = Engine()
    display = Display(engine, 4, 4)
    display.set_composer(lambda fb: fb.fill(7))
    seen = []
    display.add_frame_observer(lambda idx, content: seen.append((idx, content)))
    display.invalidate()
    engine.run_until(2 * VSYNC_PERIOD_US)
    index, content = seen[0]
    assert index == 1
    assert np.all(content == 7)
    # Mutating the live framebuffer must not corrupt the observer's copy.
    display.framebuffer.fill(0)
    assert np.all(content == 7)


def test_compose_now_is_immediate():
    engine = Engine()
    display = Display(engine, 4, 4)
    seen = []
    display.add_frame_observer(lambda idx, content: seen.append(idx))
    display.compose_now()
    assert seen == [0]

"""Unit tests for the OPP table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.device.frequencies import (
    OperatingPoint,
    FrequencyTable,
    SNAPDRAGON_8074_FREQS_KHZ,
    VOLTAGE_FLOOR,
    rail_voltage,
    snapdragon_8074_table,
)


@pytest.fixture
def table():
    return snapdragon_8074_table()


def test_fourteen_operating_points(table):
    assert len(table) == 14


def test_min_max(table):
    assert table.min_khz == 300_000
    assert table.max_khz == 2_150_400


def test_labels_match_paper_axis(table):
    labels = [p.label for p in table]
    assert labels[0] == "0.30 GHz"
    assert labels[5] == "0.96 GHz"
    assert labels[-1] == "2.15 GHz"


def test_voltage_floor_below_knee():
    assert rail_voltage(300_000) == VOLTAGE_FLOOR
    assert rail_voltage(960_000) == VOLTAGE_FLOOR


def test_voltage_rises_above_knee():
    assert rail_voltage(2_150_400) > rail_voltage(1_497_600) > VOLTAGE_FLOOR


def test_voltages_monotonic(table):
    volts = [p.volts for p in table]
    assert volts == sorted(volts)


def test_ceil_and_floor(table):
    assert table.ceil(960_001) == 1_036_800
    assert table.floor(960_001) == 960_000
    assert table.ceil(960_000) == 960_000
    assert table.floor(960_000) == 960_000


def test_ceil_clamps_to_max(table):
    assert table.ceil(9_999_999) == table.max_khz


def test_floor_clamps_to_min(table):
    assert table.floor(1) == table.min_khz


def test_step_up_down(table):
    assert table.step_up(300_000) == 422_400
    assert table.step_down(422_400) == 300_000
    assert table.step_up(table.max_khz) == table.max_khz
    assert table.step_down(table.min_khz) == table.min_khz
    assert table.step_up(300_000, steps=2) == 652_800


def test_point_lookup(table):
    assert table.point(960_000).freq_ghz == pytest.approx(0.96)
    with pytest.raises(SimulationError):
        table.point(123_456)


def test_contains(table):
    assert table.contains(1_728_000)
    assert not table.contains(1_728_001)


def test_empty_table_rejected():
    with pytest.raises(SimulationError):
        FrequencyTable([])


def test_duplicate_points_rejected():
    point = OperatingPoint(100_000, 0.8)
    with pytest.raises(SimulationError):
        FrequencyTable([point, OperatingPoint(100_000, 0.9)])


@given(st.integers(1, 3_000_000))
def test_floor_le_ceil(khz):
    table = snapdragon_8074_table()
    assert table.floor(khz) <= table.ceil(khz)


@given(st.sampled_from(SNAPDRAGON_8074_FREQS_KHZ))
def test_floor_ceil_fixpoint_on_opp(khz):
    table = snapdragon_8074_table()
    assert table.floor(khz) == khz == table.ceil(khz)

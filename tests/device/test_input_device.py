"""Unit tests for the input subsystem."""

import pytest

from repro.core import events as ev
from repro.core.errors import ReplayError
from repro.device.input_device import InputSubsystem

PATH = "/dev/input/event1"


def make_event(path=PATH, value=1):
    return ev.InputEvent(0, path, ev.EV_ABS, ev.ABS_MT_POSITION_X, value)


def test_register_and_lookup():
    subsystem = InputSubsystem()
    node = subsystem.register(PATH, "touch")
    assert subsystem.node(PATH) is node


def test_duplicate_registration_rejected():
    subsystem = InputSubsystem()
    subsystem.register(PATH, "touch")
    with pytest.raises(ReplayError):
        subsystem.register(PATH, "other")


def test_unknown_node_rejected():
    with pytest.raises(ReplayError):
        InputSubsystem().node("/dev/input/event9")


def test_events_delivered_to_all_observers():
    subsystem = InputSubsystem()
    node = subsystem.register(PATH, "touch")
    seen_a, seen_b = [], []
    node.add_observer(seen_a.append)
    node.add_observer(seen_b.append)
    node.emit(make_event())
    assert len(seen_a) == len(seen_b) == 1
    assert node.events_delivered == 1


def test_wrong_device_rejected():
    subsystem = InputSubsystem()
    node = subsystem.register(PATH, "touch")
    with pytest.raises(ReplayError):
        node.emit(make_event(path="/dev/input/event2"))


def test_removed_observer_stops_receiving():
    subsystem = InputSubsystem()
    node = subsystem.register(PATH, "touch")
    seen = []
    node.add_observer(seen.append)
    node.remove_observer(seen.append)
    node.emit(make_event())
    assert seen == []


def test_subsystem_routes_by_device():
    subsystem = InputSubsystem()
    touch = subsystem.register(PATH, "touch")
    buttons = subsystem.register("/dev/input/event2", "buttons")
    seen = []
    touch.add_observer(seen.append)
    buttons.add_observer(lambda e: seen.append("wrong"))
    subsystem.emit(make_event())
    assert seen != [] and "wrong" not in seen

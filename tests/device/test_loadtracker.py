"""Unit tests for per-sample load computation."""

import pytest

from repro.core.engine import Engine
from repro.device.cpu import CpuCore
from repro.device.frequencies import snapdragon_8074_table
from repro.device.loadtracker import LoadTracker


@pytest.fixture
def setup():
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    tracker = LoadTracker(engine.clock, core)
    return engine, core, tracker


def test_idle_window_reads_zero(setup):
    engine, _core, tracker = setup
    engine.clock.advance_to(100_000)
    assert tracker.sample() == 0


def test_fully_busy_window_reads_hundred(setup):
    engine, core, tracker = setup
    core.set_busy(True)
    engine.clock.advance_to(100_000)
    assert tracker.sample() == 100


def test_half_busy_window(setup):
    engine, core, tracker = setup
    core.set_busy(True)
    engine.clock.advance_to(50_000)
    core.set_busy(False)
    engine.clock.advance_to(100_000)
    assert tracker.sample() == 50


def test_sample_resets_the_window(setup):
    engine, core, tracker = setup
    core.set_busy(True)
    engine.clock.advance_to(50_000)
    core.set_busy(False)
    engine.clock.advance_to(100_000)
    tracker.sample()
    engine.clock.advance_to(200_000)
    assert tracker.sample() == 0


def test_zero_width_window_reports_instantaneous_state(setup):
    _engine, core, tracker = setup
    tracker.sample()
    assert tracker.sample() == 0
    core.set_busy(True)
    assert tracker.sample() == 100


def test_peek_window(setup):
    engine, _core, tracker = setup
    engine.clock.advance_to(75_000)
    assert tracker.peek_window() == 75_000

"""Unit tests for the power model and energy meter."""

import pytest

from repro.core.errors import SimulationError
from repro.device.frequencies import snapdragon_8074_table
from repro.device.power import EnergyMeter, PowerModel


@pytest.fixture
def model():
    return PowerModel()


@pytest.fixture
def table():
    return snapdragon_8074_table()


class TestPowerModel:
    def test_active_power_increases_with_frequency(self, model, table):
        powers = [model.active_power(p.freq_khz, p.volts) for p in table]
        assert powers == sorted(powers)
        assert powers[0] > model.idle_power()

    def test_most_efficient_frequency_is_the_voltage_knee(self, model, table):
        # The paper's calibration finds 0.96 GHz the most efficient OPP.
        assert model.most_efficient_frequency(table) == 960_000

    def test_energy_per_work_u_shape(self, model, table):
        energies = [
            model.energy_per_gigacycle(p.freq_khz, p.volts) for p in table
        ]
        best = energies.index(min(energies))
        assert 0 < best < len(energies) - 1
        # Low end ~1.1x the minimum, high end ~1.7-2.0x (the paper's shape).
        assert 1.05 < energies[0] / min(energies) < 1.3
        assert 1.5 < energies[-1] / min(energies) < 2.2

    def test_calibration_reports_dynamic_power(self, model, table):
        dynamic = model.calibrate(table)
        assert set(dynamic) == set(table.frequencies_khz)
        for point in table:
            expected = model.active_power(point.freq_khz, point.volts)
            assert dynamic[point.freq_khz] == pytest.approx(
                expected - model.idle_power()
            )

    def test_invalid_constants_rejected(self):
        with pytest.raises(SimulationError):
            PowerModel(kappa=0)
        with pytest.raises(SimulationError):
            PowerModel(idle_w=0.5, active_base_w=0.1)

    def test_calibration_rejects_bad_duration(self, model, table):
        with pytest.raises(SimulationError):
            model.calibrate(table, spin_seconds=0)


class TestEnergyMeter:
    def test_idle_energy_accumulates(self, model):
        meter = EnergyMeter(model)
        meter.sync(1_000_000)
        assert meter.energy_joules == pytest.approx(model.idle_power())

    def test_busy_energy_at_frequency(self, model, table):
        meter = EnergyMeter(model)
        point = table.point(960_000)
        meter.set_state(0, True, point.freq_khz, point.volts)
        meter.sync(2_000_000)
        expected = 2 * model.active_power(point.freq_khz, point.volts)
        assert meter.energy_joules == pytest.approx(expected)
        assert meter.busy_energy_joules == pytest.approx(expected)

    def test_energy_at_includes_open_interval(self, model, table):
        meter = EnergyMeter(model)
        point = table.point(300_000)
        meter.set_state(0, True, point.freq_khz, point.volts)
        live = meter.energy_at(500_000)
        assert live == pytest.approx(
            0.5 * model.active_power(point.freq_khz, point.volts)
        )

    def test_meter_cannot_rewind(self, model):
        meter = EnergyMeter(model)
        meter.sync(100)
        with pytest.raises(SimulationError):
            meter.sync(50)

    def test_mixed_busy_idle_split(self, model, table):
        meter = EnergyMeter(model)
        point = table.point(960_000)
        meter.set_state(0, True, point.freq_khz, point.volts)
        meter.set_state(1_000_000, False, point.freq_khz, point.volts)
        meter.sync(2_000_000)
        active = model.active_power(point.freq_khz, point.volts)
        assert meter.busy_energy_joules == pytest.approx(active)
        assert meter.energy_joules == pytest.approx(active + model.idle_power())

    def test_busy_energy_at_while_idle_is_static(self, model):
        meter = EnergyMeter(model)
        meter.sync(1_000_000)
        assert meter.busy_energy_at(2_000_000) == meter.busy_energy_joules

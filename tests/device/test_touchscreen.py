"""Unit tests for the touchscreen's multi-touch protocol encoding."""

import pytest

from repro.core import events as ev
from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.core.geometry import Point
from repro.device.input_device import InputSubsystem
from repro.device.touchscreen import Touchscreen


@pytest.fixture
def setup():
    engine = Engine()
    subsystem = InputSubsystem()
    node = subsystem.register("/dev/input/event1", "touch")
    screen = Touchscreen(engine, node, 72, 128)
    events = []
    node.add_observer(events.append)
    return engine, screen, events


def packets(events):
    """Split an event list into SYN_REPORT-terminated packets."""
    out, current = [], []
    for event in events:
        current.append(event)
        if event.is_syn_report():
            out.append(current)
            current = []
    return out


def test_tap_produces_down_and_up_packets(setup):
    engine, screen, events = setup
    screen.schedule_tap(1000, Point(30, 40))
    engine.run_until(1_000_000)
    groups = packets(events)
    assert len(groups) == 2
    down, up = groups
    codes = {(e.type, e.code): e.value for e in down}
    assert codes[(ev.EV_ABS, ev.ABS_MT_POSITION_X)] == 30
    assert codes[(ev.EV_ABS, ev.ABS_MT_POSITION_Y)] == 40
    assert (ev.EV_ABS, ev.ABS_MT_TRACKING_ID) in codes
    up_codes = {(e.type, e.code): e.value for e in up}
    assert up_codes[(ev.EV_ABS, ev.ABS_MT_TRACKING_ID)] == ev.TRACKING_ID_NONE


def test_tap_up_time_matches_hold(setup):
    engine, screen, events = setup
    up_time = screen.schedule_tap(1000, Point(1, 1), hold_us=50_000)
    assert up_time == 51_000
    engine.run_until(1_000_000)
    assert events[-1].timestamp == 51_000


def test_swipe_has_move_packets_between_down_and_up(setup):
    engine, screen, events = setup
    screen.schedule_swipe(0, Point(36, 100), Point(36, 20), 180_000)
    engine.run_until(1_000_000)
    groups = packets(events)
    assert len(groups) > 3  # down + moves + up
    first = {(e.type, e.code): e.value for e in groups[0]}
    assert first[(ev.EV_ABS, ev.ABS_MT_POSITION_Y)] == 100
    # The last move reaches the end point before the release.
    move_ys = [
        {(e.type, e.code): e.value for e in group}.get(
            (ev.EV_ABS, ev.ABS_MT_POSITION_Y)
        )
        for group in groups[1:-1]
    ]
    assert move_ys[-1] == 20


def test_tracking_ids_increment(setup):
    engine, screen, events = setup
    screen.schedule_tap(0, Point(1, 1))
    screen.schedule_tap(200_000, Point(2, 2))
    engine.run_until(1_000_000)
    ids = [
        e.value
        for e in events
        if e.type == ev.EV_ABS
        and e.code == ev.ABS_MT_TRACKING_ID
        and e.value != ev.TRACKING_ID_NONE
    ]
    assert ids[1] == ids[0] + 1


def test_out_of_bounds_tap_rejected(setup):
    _engine, screen, _events = setup
    with pytest.raises(SimulationError):
        screen.schedule_tap(0, Point(72, 0))
    with pytest.raises(SimulationError):
        screen.schedule_tap(0, Point(0, 128))


def test_zero_duration_swipe_rejected(setup):
    _engine, screen, _events = setup
    with pytest.raises(SimulationError):
        screen.schedule_swipe(0, Point(1, 1), Point(2, 2), 0)

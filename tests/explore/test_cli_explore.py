"""End-to-end CLI: explore command and parameterized sweep --config."""

import pytest

from repro.harness.cli import main

EXPLORE_ARGS = [
    "explore",
    "--dataset", "03",
    "--governor", "qoe_aware",
    "--strategy", "random",
    "--budget", "3",
    "--reps", "1",
]


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    rc = main(list(argv))
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


def test_explore_reports_a_frontier(tmp_path, capsys):
    rc, out, err = run_cli(
        capsys, *EXPLORE_ARGS, "--jobs", "2", "--cache-dir", str(tmp_path)
    )
    assert rc == 0
    assert "Pareto frontier vs oracle" in out
    assert "oracle" in out and "energy normalised to oracle" in out
    assert "on the Pareto frontier" in out
    # Stock baselines ride along for reference.
    assert "ondemand" in out and "conservative" in out
    # Telemetry stays on stderr, keeping stdout deterministic.
    assert "replay(s) executed" in err and "replay" not in out


def test_explore_stdout_identical_across_jobs_and_warm_cache(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    _rc, cold, cold_err = run_cli(
        capsys, *EXPLORE_ARGS, "--jobs", "2", "--cache-dir", cache
    )
    _rc, warm, warm_err = run_cli(
        capsys, *EXPLORE_ARGS, "--jobs", "4", "--cache-dir", cache
    )
    assert warm == cold
    # The warm re-run replayed nothing: every cell came from the cache.
    assert "# 0 replay(s) executed" in warm_err
    assert "# 0 replay(s) executed" not in cold_err

    _rc, serial, _err = run_cli(
        capsys, *EXPLORE_ARGS, "--jobs", "1", "--no-cache"
    )
    assert serial == cold


def test_explore_unknown_governor_fails_cleanly(capsys):
    rc, _out, err = run_cli(
        capsys, "explore", "--governor", "warp", "--no-cache"
    )
    assert rc == 2
    assert "no built-in search space" in err


def test_explore_unknown_strategy_fails_cleanly(capsys):
    rc, _out, err = run_cli(
        capsys, "explore", "--strategy", "anneal", "--no-cache"
    )
    assert rc == 2
    assert "unknown search strategy" in err


def test_sweep_accepts_parameterized_config(tmp_path, capsys):
    rc, out, _err = run_cli(
        capsys,
        "sweep", "--dataset", "03", "--reps", "1", "--jobs", "2",
        "--config", "qoe_aware:boost=1_036_800,settle=40_000",
        "--cache-dir", str(tmp_path),
    )
    assert rc == 0
    # The canonical spelling appears in the figures in place of the
    # stock governors; the 14 fixed configs stay for the oracle.
    assert "qoe_aware:boost=1036800,settle=40000" in out
    assert "ondemand" not in out
    assert "0.96 GHz" in out


@pytest.mark.parametrize(
    "config, message",
    [
        ("qoe_aware:bogus=1", "no tunable 'bogus'"),
        ("qoe_aware:boost", "key=value"),
        ("fixed:999", "not an operating point"),
        ("fixed", "needs a frequency"),
        ("warp:speed=9", "unknown governor"),
    ],
)
def test_sweep_rejects_bad_configs_before_running(capsys, config, message):
    rc, _out, err = run_cli(
        capsys,
        "sweep", "--dataset", "03", "--reps", "1", "--no-cache",
        "--config", config,
    )
    assert rc == 2
    assert message in err
    assert err.count("\n") == 1  # one clean line
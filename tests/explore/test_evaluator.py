"""Batch evaluation against real replays, the cache and the oracle."""

import pytest

from repro.explore.evaluator import ExploreEvaluator
from repro.fleet.cache import ResultCache
from repro.harness.experiment import replay_run
from repro.harness.sweep import fixed_configs

ORACLE_RUNS = len(fixed_configs())
CANDIDATE = "qoe_aware:boost=1036800,settle=40000"


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    return ResultCache(tmp_path_factory.mktemp("explore-cache"))


@pytest.fixture(scope="module")
def evaluator(artifacts_ds03, shared_cache) -> ExploreEvaluator:
    return ExploreEvaluator(artifacts_ds03, jobs=2, cache=shared_cache)


def test_scores_match_a_direct_replay(artifacts_ds03, evaluator):
    [score] = evaluator.evaluate([CANDIDATE], reps=1)
    reference = replay_run(
        artifacts_ds03,
        CANDIDATE,
        rep=0,
        master_seed=artifacts_ds03.recording_master_seed,
    )
    assert score.mean_energy_j == reference.dynamic_energy_j
    assert score.irritation_s == reference.irritation_seconds()
    assert score.energy_norm == pytest.approx(
        reference.dynamic_energy_j / evaluator.oracle.energy_j
    )


def test_oracle_built_once_from_fixed_runs(evaluator):
    evaluator.evaluate([CANDIDATE], reps=1)  # memoized after the first test
    # The first evaluate() composed the oracle: 14 fixed cells + 1 candidate.
    assert evaluator.replays_executed == ORACLE_RUNS + 1
    energy = evaluator.oracle.energy_j
    assert energy > 0
    assert evaluator.oracle is evaluator.oracle  # memoized, no re-runs
    assert evaluator.replays_executed == ORACLE_RUNS + 1


def test_memo_and_canonicalisation_serve_repeats_for_free(evaluator):
    executed = evaluator.replays_executed
    [first] = evaluator.evaluate([CANDIDATE], reps=1)
    # A different spelling of the same candidate is the same cell.
    [respelled] = evaluator.evaluate(
        ["qoe_aware:settle=40_000,boost=1_036_800"], reps=1
    )
    assert respelled is first
    assert evaluator.replays_executed == executed


def test_batch_preserves_order_and_dedupes(evaluator):
    scores = evaluator.evaluate(
        [CANDIDATE, "qoe_aware", CANDIDATE], reps=1
    )
    assert [s.config for s in scores] == [CANDIDATE, "qoe_aware", CANDIDATE]
    assert scores[0] is scores[2]


def test_warm_evaluator_executes_zero_replays(artifacts_ds03, shared_cache, evaluator):
    warm = ExploreEvaluator(artifacts_ds03, jobs=1, cache=shared_cache)
    [score] = warm.evaluate([CANDIDATE], reps=1)
    assert warm.replays_executed == 0
    assert warm.cache_hits == ORACLE_RUNS + 1
    [reference] = evaluator.evaluate([CANDIDATE], reps=1)
    assert score == reference


def test_jobs_do_not_change_scores(artifacts_ds03, evaluator):
    serial = ExploreEvaluator(artifacts_ds03, jobs=1)
    configs = [CANDIDATE, "qoe_aware", "ondemand"]
    assert serial.evaluate(configs, reps=1) == evaluator.evaluate(
        configs, reps=1
    )


class TestDominantCauseOfRuns:
    def run(self, attribution):
        from repro.results import RunRecord

        obs = None
        if attribution is not None:
            obs = {"attribution": attribution}
        return RunRecord(
            workload="w", config="c", rep=0, duration_us=1_000,
            energy_j=1.0, dynamic_energy_j=0.5, busy_us=0,
            transitions=[], busy_intervals=[], lags=(), obs=obs,
        )

    def test_none_when_untraced(self):
        from repro.explore.evaluator import dominant_cause_of_runs

        assert dominant_cause_of_runs([self.run(None)]) is None

    def test_none_when_any_rep_lacks_attribution(self):
        from repro.explore.evaluator import dominant_cause_of_runs

        attributed = self.run({"per_cause_penalty_us": {"slow_ramp": 100}})
        assert dominant_cause_of_runs([attributed, self.run(None)]) is None

    def test_none_when_irritation_is_zero(self):
        from repro.explore.evaluator import dominant_cause_of_runs

        assert dominant_cause_of_runs(
            [self.run({"per_cause_penalty_us": {}})]
        ) is None

    def test_sums_across_reps_and_breaks_ties_by_taxonomy_order(self):
        from repro.explore.evaluator import dominant_cause_of_runs

        runs = [
            self.run({"per_cause_penalty_us": {"at_speed": 60, "park_wake": 50}}),
            self.run({"per_cause_penalty_us": {"park_wake": 10}}),
        ]
        # 60 at_speed vs 60 park_wake: park_wake is earlier in the taxonomy.
        assert dominant_cause_of_runs(runs) == "park_wake"

    def test_traced_evaluation_scores_carry_a_cause(
        self, artifacts_ds03, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TRACE", "1")
        fresh = ExploreEvaluator(
            artifacts_ds03, jobs=1, cache=ResultCache(tmp_path / "cache")
        )
        [score] = fresh.evaluate(["conservative"], reps=1)
        assert score.dominant_cause is not None

"""Dominance, frontier extraction and the ASCII report."""

from repro.explore.evaluator import CandidateScore
from repro.explore.pareto import (
    dominates,
    pareto_frontier,
    render_frontier_report,
)


def score(config: str, energy: float, irritation: float) -> CandidateScore:
    return CandidateScore(
        config=config,
        reps=1,
        mean_energy_j=energy * 30,
        energy_norm=energy,
        irritation_s=irritation,
    )


class TestDominates:
    def test_strictly_better_on_both(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_better_on_one_equal_on_other(self):
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert dominates((2.0, 1.0), (2.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_tradeoff_points_do_not_dominate(self):
        assert not dominates((1.0, 3.0), (2.0, 1.0))
        assert not dominates((2.0, 1.0), (1.0, 3.0))


class TestFrontier:
    def test_extracts_the_lower_left_hull(self):
        a = score("a", 0.9, 5.0)
        b = score("b", 1.0, 1.0)
        c = score("c", 1.2, 0.1)
        dominated = score("d", 1.3, 6.0)
        frontier = pareto_frontier([dominated, c, a, b])
        assert [s.config for s in frontier] == ["a", "b", "c"]

    def test_duplicate_points_collapse_to_one_representative(self):
        a = score("a", 1.0, 1.0)
        twin = score("twin", 1.0, 1.0)
        frontier = pareto_frontier([twin, a])
        assert [s.config for s in frontier] == ["a"]

    def test_single_point_is_its_own_frontier(self):
        only = score("only", 1.1, 0.0)
        assert pareto_frontier([only]) == [only]


class TestReport:
    def test_report_marks_frontier_baselines_and_oracle(self):
        scores = [score("a", 0.9, 5.0), score("b", 1.3, 6.0)]
        baselines = [score("ondemand", 1.4, 1.0)]
        report = render_frontier_report(scores, 0.25, baselines)
        lines = report.splitlines()
        assert "1 on the Pareto frontier" in lines[0]
        starred = [l for l in lines if l.lstrip().startswith("*")]
        assert len(starred) == 1 and "a" in starred[0]
        assert any(l.lstrip().startswith("b ") and "ondemand" in l
                   for l in lines)
        assert any("oracle" in l and "1.000" in l for l in lines)
        assert "energy normalised to oracle" in report

    def test_report_is_deterministic(self):
        scores = [score("b", 1.1, 2.0), score("a", 0.9, 5.0)]
        assert render_frontier_report(scores, 0.1) == render_frontier_report(
            list(reversed(scores)), 0.1
        )


class TestDominantCauseColumn:
    def test_hidden_by_default(self):
        report = render_frontier_report([score("a", 0.9, 5.0)], 0.25)
        assert "dominant cause" not in report

    def test_shown_when_requested(self):
        attributed = CandidateScore(
            config="a",
            reps=1,
            mean_energy_j=27.0,
            energy_norm=0.9,
            irritation_s=5.0,
            dominant_cause="slow_ramp",
        )
        report = render_frontier_report(
            [attributed, score("b", 1.1, 0.0)],
            0.25,
            baselines=[score("ondemand", 1.4, 1.0)],
            show_causes=True,
        )
        assert "dominant cause" in report
        rows = {
            line.split()[1]: line
            for line in report.splitlines()
            if line.lstrip().startswith(("*", "b "))
        }
        assert "slow_ramp" in rows["a"]
        # Unattributed scores (untraced runs, zero irritation) show '-'.
        assert rows["b"].rstrip().endswith("-")
        assert rows["ondemand"].rstrip().endswith("-")

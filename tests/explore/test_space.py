"""Parameter-space model: specs, enumeration, sampling, serialization."""

import random

import pytest

from repro.core.errors import ReproError
from repro.explore.space import (
    GovernorSpace,
    ParamSpec,
    builtin_space,
    builtin_space_names,
)


class TestParamSpec:
    def test_values_sorted_and_deduped(self):
        spec = ParamSpec("settle", (40_000, 20_000, 40_000))
        assert spec.values == (20_000, 40_000)

    def test_empty_values_rejected(self):
        with pytest.raises(ReproError):
            ParamSpec("settle", ())

    def test_neighbours_are_adjacent_grid_values(self):
        spec = ParamSpec("settle", (1, 2, 3))
        assert spec.neighbours(1) == (2,)
        assert spec.neighbours(2) == (1, 3)
        assert spec.neighbours(3) == (2,)

    def test_off_grid_value_rejected(self):
        spec = ParamSpec("settle", (1, 2, 3))
        with pytest.raises(ReproError, match="4"):
            spec.index(4)


@pytest.fixture
def small_space() -> GovernorSpace:
    return GovernorSpace(
        "qoe_aware",
        [
            ParamSpec("boost", (960_000, 1_036_800, 1_190_400), unit="khz"),
            ParamSpec("settle", (20_000, 40_000), unit="us"),
        ],
    )


class TestGovernorSpace:
    def test_size_and_grid(self, small_space):
        assert small_space.size == 6
        grid = list(small_space.grid())
        assert len(grid) == 6
        assert len({small_space.config(c) for c in grid}) == 6

    def test_config_strings_are_canonical(self, small_space):
        candidate = {"settle": 40_000, "boost": 960_000}
        assert (
            small_space.config(candidate)
            == "qoe_aware:boost=960000,settle=40000"
        )

    def test_parse_round_trips(self, small_space):
        for candidate in small_space.grid():
            config = small_space.config(candidate)
            assert small_space.parse(config) == candidate

    def test_parse_rejects_off_grid_and_wrong_governor(self, small_space):
        with pytest.raises(ReproError):
            small_space.parse("qoe_aware:boost=300000,settle=40000")
        with pytest.raises(ReproError, match="ondemand"):
            small_space.parse("ondemand:up_threshold=90")
        with pytest.raises(ReproError):
            small_space.parse("qoe_aware:boost=960000")  # missing key

    def test_sample_is_seeded_and_distinct(self, small_space):
        first = small_space.sample(random.Random(42), 4)
        again = small_space.sample(random.Random(42), 4)
        assert first == again
        configs = [small_space.config(c) for c in first]
        assert len(set(configs)) == 4

    def test_sample_caps_at_space_size(self, small_space):
        everything = small_space.sample(random.Random(0), 100)
        assert len(everything) == small_space.size

    def test_neighbours_step_one_param_by_one_notch(self, small_space):
        centre = {"boost": 1_036_800, "settle": 20_000}
        steps = small_space.neighbours(centre)
        assert {small_space.config(c) for c in steps} == {
            "qoe_aware:boost=960000,settle=20000",
            "qoe_aware:boost=1190400,settle=20000",
            "qoe_aware:boost=1036800,settle=40000",
        }

    def test_unknown_governor_rejected(self):
        with pytest.raises(ReproError, match="warp"):
            GovernorSpace("warp", [ParamSpec("x", (1,))])

    def test_undeclared_tunable_rejected(self):
        with pytest.raises(ReproError, match="bogus"):
            GovernorSpace("qoe_aware", [ParamSpec("bogus", (1,))])

    def test_out_of_table_frequency_rejected(self):
        with pytest.raises(ReproError, match="123"):
            GovernorSpace(
                "qoe_aware", [ParamSpec("boost", (123,), unit="khz")]
            )


class TestBuiltinSpaces:
    def test_every_studied_governor_has_a_space(self):
        assert builtin_space_names() == [
            "conservative",
            "interactive",
            "ondemand",
            "qoe_aware",
        ]

    @pytest.mark.parametrize("governor", builtin_space_names())
    def test_candidates_construct_real_governors(self, governor, device):
        space = builtin_space(governor)
        assert space.size > 1
        candidate = next(space.grid())
        installed = device.set_governor(space.config(candidate))
        assert installed.name == governor

    def test_unknown_space_rejected(self):
        with pytest.raises(ReproError, match="powersave"):
            builtin_space("powersave")

"""Search strategies over a synthetic, replay-free landscape."""

import random

import pytest

from repro.core.errors import ReproError
from repro.explore.evaluator import CandidateScore
from repro.explore.space import GovernorSpace, ParamSpec
from repro.explore.strategies import (
    GridSearch,
    HillClimb,
    RandomSearch,
    SuccessiveHalving,
    make_strategy,
    strategy_names,
)

BOOSTS = (960_000, 1_036_800, 1_190_400, 1_497_600)
SETTLES = (20_000, 40_000, 60_000)


@pytest.fixture
def space() -> GovernorSpace:
    return GovernorSpace(
        "qoe_aware",
        [
            ParamSpec("boost", BOOSTS, unit="khz"),
            ParamSpec("settle", SETTLES, unit="us"),
        ],
    )


class FakeEvaluator:
    """Separable convex landscape with its optimum inside the grid.

    Energy is minimised at boost=1_036_800, irritation at settle=40_000,
    so every ranking strategy should steer towards
    ``qoe_aware:boost=1036800,settle=40000``.
    """

    OPTIMUM = "qoe_aware:boost=1036800,settle=40000"

    def __init__(self, space: GovernorSpace) -> None:
        self.space = space
        self.calls: list[tuple[str, int]] = []

    def __call__(self, configs: list[str], reps: int) -> list[CandidateScore]:
        out = []
        for config in configs:
            self.calls.append((config, reps))
            params = self.space.parse(config)
            energy = 1.0 + abs(BOOSTS.index(params["boost"]) - 1) / 10
            irritation = abs(SETTLES.index(params["settle"]) - 1) * 2.0
            out.append(
                CandidateScore(
                    config=config,
                    reps=reps,
                    mean_energy_j=energy * 30,
                    energy_norm=energy,
                    irritation_s=irritation,
                )
            )
        return out

    def spent(self) -> int:
        return len(self.calls)


def test_registry_and_aliases():
    assert strategy_names() == ["grid", "halving", "hillclimb", "random"]
    assert make_strategy("exhaustive").name == "grid"
    with pytest.raises(ReproError, match="anneal"):
        make_strategy("anneal")


def test_budget_must_be_positive(space):
    with pytest.raises(ReproError, match="budget"):
        GridSearch().search(space, FakeEvaluator(space), 0, random.Random(0))


class TestGridSearch:
    def test_covers_whole_space_within_budget(self, space):
        evaluate = FakeEvaluator(space)
        scores = GridSearch().search(space, evaluate, 100, random.Random(0))
        assert len(scores) == space.size
        assert evaluate.spent() == space.size

    def test_truncates_to_budget_in_grid_order(self, space):
        evaluate = FakeEvaluator(space)
        scores = GridSearch().search(space, evaluate, 5, random.Random(0))
        assert len(scores) == 5
        expected = [space.config(c) for c in space.grid()][:5]
        assert [s.config for s in scores] == expected


class TestRandomSearch:
    def test_deterministic_for_a_seed_and_within_budget(self, space):
        first = RandomSearch().search(
            space, FakeEvaluator(space), 7, random.Random(42)
        )
        again = RandomSearch().search(
            space, FakeEvaluator(space), 7, random.Random(42)
        )
        assert [s.config for s in first] == [s.config for s in again]
        assert len(first) == 7
        assert len({s.config for s in first}) == 7


class TestSuccessiveHalving:
    def test_promotes_survivors_at_doubled_reps(self, space):
        evaluate = FakeEvaluator(space)
        scores = SuccessiveHalving(reps=1).search(
            space, evaluate, 12, random.Random(1)
        )
        assert evaluate.spent() <= 12
        reps_seen = sorted({reps for _config, reps in evaluate.calls})
        assert reps_seen[0] == 1 and len(reps_seen) > 1  # at least one rung up
        # The returned scores carry each survivor's deepest evaluation.
        deepest = max(s.reps for s in scores)
        assert deepest == reps_seen[-1]

    def test_final_survivor_is_the_optimum(self, space):
        evaluate = FakeEvaluator(space)
        scores = SuccessiveHalving(reps=1).search(
            space, evaluate, 24, random.Random(3)
        )
        deepest = max(s.reps for s in scores)
        champions = [s for s in scores if s.reps == deepest]
        best = min(champions, key=lambda s: s.scalar())
        assert best.config == FakeEvaluator.OPTIMUM


class TestHillClimb:
    def test_descends_to_the_global_optimum(self, space):
        evaluate = FakeEvaluator(space)
        scores = HillClimb().search(space, evaluate, 50, random.Random(7))
        best = min(scores, key=lambda s: s.scalar())
        assert best.config == FakeEvaluator.OPTIMUM
        # The separable landscape never needs the whole grid.
        assert evaluate.spent() < space.size * 2

    def test_never_reevaluates_a_candidate(self, space):
        evaluate = FakeEvaluator(space)
        HillClimb().search(space, evaluate, 50, random.Random(7))
        assert len(evaluate.calls) == len(set(evaluate.calls))

    def test_respects_budget(self, space):
        evaluate = FakeEvaluator(space)
        HillClimb().search(space, evaluate, 3, random.Random(5))
        assert evaluate.spent() <= 3

"""Tests for the backend registry, the sqlite work queue and the
distributed backend's crash/resume semantics."""

import json
import multiprocessing

import pytest

from repro.core.errors import ReproError
from repro.fleet.backends import (
    DistributedBackend,
    LocalBackend,
    SqliteWorkQueue,
    backend_names,
    create_backend,
    parse_backend_spec,
)
from repro.fleet.cache import ResultCache, workload_fingerprint
from repro.fleet.engine import FleetEngine
from repro.fleet.spec import RunSpec, enumerate_sweep_specs
from repro.results import RunRecord

SMALL_CONFIGS = ["fixed:300000", "fixed:2150400", "ondemand"]


@pytest.fixture(scope="module")
def small_specs(artifacts_ds03):
    return enumerate_sweep_specs(
        artifacts_ds03.name, SMALL_CONFIGS, 1, artifacts_ds03.recording_master_seed
    )


@pytest.fixture(scope="module")
def serial_results(artifacts_ds03, small_specs):
    return FleetEngine(jobs=1).run(artifacts_ds03, small_specs)


# --- registry and spec grammar ------------------------------------------------------


def test_backend_spec_grammar():
    assert parse_backend_spec("local") == ("local", {})
    assert parse_backend_spec(" local ") == ("local", {})
    assert parse_backend_spec("local:jobs=8") == ("local", {"jobs": "8"})
    assert parse_backend_spec("distributed:dir=/shared,workers=4") == (
        "distributed", {"dir": "/shared", "workers": "4"}
    )


@pytest.mark.parametrize(
    "bad",
    ["", "  ", ":", "local:", "local:jobs", "local:jobs=", "local:=8",
     "local:jobs=8,jobs=9"],
)
def test_malformed_backend_specs_raise_one_liners(bad):
    with pytest.raises(ReproError):
        parse_backend_spec(bad)


def test_registry_lists_builtins_and_rejects_unknowns():
    assert backend_names() == ["distributed", "local"]
    with pytest.raises(ReproError, match="unknown fleet backend 'bogus'"):
        create_backend("bogus")
    with pytest.raises(ReproError, match="does not take option"):
        create_backend("local:workers=4")


def test_create_backend_defaults_to_local_with_cli_jobs():
    backend = create_backend(None, jobs=3)
    assert isinstance(backend, LocalBackend)
    assert backend.jobs == 3
    # an explicit option wins over the --jobs default
    assert create_backend("local:jobs=8", jobs=3).jobs == 8


def test_distributed_spec_needs_a_shared_dir(tmp_path):
    with pytest.raises(ReproError, match="shared directory"):
        create_backend("distributed")
    backend = create_backend(
        f"distributed:dir={tmp_path},workers=4,lease=5,batch=2", jobs=2
    )
    assert isinstance(backend, DistributedBackend)
    assert (backend.workers, backend.lease_s, backend.batch) == (4, 5.0, 2)
    # workers defaults to the CLI --jobs value
    assert create_backend(f"distributed:dir={tmp_path}", jobs=5).workers == 5


# --- the sqlite work queue ----------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _queue(tmp_path, clock=None):
    queue = SqliteWorkQueue(tmp_path / "queue.sqlite3", clock=clock or FakeClock())
    queue.ensure()
    return queue


def _cells(specs):
    return [(i, spec.to_wire(), f"key-{i}") for i, spec in enumerate(specs)]


def test_lease_claims_each_cell_exactly_once(tmp_path):
    specs = enumerate_sweep_specs("02", ["a"], 3, 2014)
    queue = _queue(tmp_path)
    queue.enqueue("run", _cells(specs))
    first = queue.lease("run", "w0", batch=2, lease_s=30.0)
    assert [idx for idx, _, _ in first] == [0, 1]
    second = queue.lease("run", "w1", batch=2, lease_s=30.0)
    assert [idx for idx, _, _ in second] == [2]
    # everything leased and unexpired: nothing left to claim
    assert queue.lease("run", "w1", batch=2, lease_s=30.0) == []
    assert queue.counts("run") == {"leased": 3}
    # the leased spec round-trips through the wire format
    assert RunSpec.from_wire(first[0][1]) == specs[0]


def test_expired_lease_is_redispatched_with_attempt_count(tmp_path):
    """The crash-recovery path: a dead worker's cells come back once its
    lease expires, and the attempt counter records the re-dispatch."""
    clock = FakeClock()
    specs = enumerate_sweep_specs("02", ["a"], 2, 2014)
    queue = _queue(tmp_path, clock)
    queue.enqueue("run", _cells(specs))
    taken = queue.lease("run", "dead-worker", batch=2, lease_s=30.0)
    assert len(taken) == 2
    # lease still live: no re-dispatch
    clock.advance(29.0)
    assert queue.lease("run", "w1", batch=2, lease_s=30.0) == []
    assert queue.redispatched("run") == 0
    # lease expired: both cells re-lease to the live worker
    clock.advance(2.0)
    retaken = queue.lease("run", "w1", batch=2, lease_s=30.0)
    assert [idx for idx, _, _ in retaken] == [0, 1]
    assert queue.redispatched("run") == 2


def test_ack_completes_a_cell_and_done_cells_skips_consumed(tmp_path):
    specs = enumerate_sweep_specs("02", ["a"], 2, 2014)
    queue = _queue(tmp_path)
    queue.enqueue("run", _cells(specs))
    queue.lease("run", "w0", batch=2, lease_s=30.0)
    queue.ack("run", 0, row={"x": 1}, failure=None, telemetry={"pid": 9})
    done = queue.done_cells("run", skip=set())
    assert done == [(0, {"x": 1}, None, {"pid": 9})]
    # a consumed cell is never surfaced again
    assert queue.done_cells("run", skip={0}) == []
    # a done cell is never re-leased, even after every lease expires
    queue._clock.advance(1000.0)
    assert [idx for idx, _, _ in queue.lease("run", "w1", 5, 30.0)] == [1]
    assert queue.counts("run") == {"done": 1, "leased": 1}


def test_release_leases_returns_cells_to_pending(tmp_path):
    specs = enumerate_sweep_specs("02", ["a"], 3, 2014)
    queue = _queue(tmp_path)
    queue.enqueue("run", _cells(specs))
    queue.lease("run", "w0", batch=3, lease_s=30.0)
    queue.ack("run", 0, row={"x": 1}, failure=None, telemetry={})
    assert queue.release_leases("run") == 2
    assert queue.counts("run") == {"done": 1, "pending": 2}


def test_enqueue_sweeps_stale_runs(tmp_path):
    """The queue is coordination-only state: rows from a killed run are
    swept on the next enqueue, never resurrected."""
    specs = enumerate_sweep_specs("02", ["a"], 2, 2014)
    queue = _queue(tmp_path)
    queue.enqueue("dead-run", _cells(specs))
    queue.enqueue("live-run", _cells(specs[:1]))
    assert queue.counts("dead-run") == {}
    assert queue.counts("live-run") == {"pending": 1}


# --- concurrent and corrupt store rows ----------------------------------------------


def _race_store(root, key, record_json, start, iterations):
    cache = ResultCache(root)
    record = RunRecord.loads(record_json)
    start.wait()
    for _ in range(iterations):
        cache.store(key, record)


def test_concurrent_writers_racing_one_key_never_corrupt_it(
    tmp_path, serial_results
):
    """Two processes hammering store() on the same key (the distributed
    duplicate-execution case) must leave a loadable, identical row —
    atomic temp-file + rename, no torn writes, no leftover temp files."""
    record = serial_results[0]
    key = "ab" + "0" * 62
    start = multiprocessing.Event()
    writers = [
        multiprocessing.Process(
            target=_race_store,
            args=(tmp_path, key, record.dumps(), start, 50),
        )
        for _ in range(2)
    ]
    for writer in writers:
        writer.start()
    start.set()
    for writer in writers:
        writer.join(timeout=60)
    assert all(writer.exitcode == 0 for writer in writers)
    cache = ResultCache(tmp_path)
    assert cache.load(key) == record
    assert not list(tmp_path.glob("*/.tmp-*")), "temp files leaked"
    assert cache.entry_count() == 1


def test_truncated_and_corrupt_rows_are_misses(tmp_path, serial_results):
    cache = ResultCache(tmp_path)
    record = serial_results[0]
    whole = record.dumps()
    for i, payload in enumerate(
        [whole[: len(whole) // 2], "", "{}", "not json at all"]
    ):
        key = f"{i:02d}" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload, encoding="utf-8")
        assert cache.load(key) is None
    assert cache.misses == 4
    assert cache.hits == 0


# --- the distributed backend end to end ---------------------------------------------


def _distributed_engine(tmp_path, **kwargs):
    backend = DistributedBackend(tmp_path / "share", **kwargs)
    return FleetEngine(cache=backend.result_store(), backend=backend), backend


def test_distributed_results_bit_identical_to_serial(
    tmp_path, artifacts_ds03, small_specs, serial_results
):
    engine, backend = _distributed_engine(tmp_path, workers=2, batch=2)
    results = engine.run(artifacts_ds03, small_specs)
    assert results == serial_results
    stats = engine.last_stats
    assert stats.backend == "distributed"
    assert stats.executed == len(small_specs)
    # workers published every row themselves; the engine counted them
    assert stats.stored == len(small_specs)
    assert backend.last_workers_lost == 0


def test_restarted_sweep_resumes_from_the_shared_store(
    tmp_path, artifacts_ds03, small_specs, serial_results
):
    """Kill-and-restart semantics: a second engine over the same shared
    directory finds every published row and replays nothing."""
    first, _ = _distributed_engine(tmp_path, workers=2)
    first.run(artifacts_ds03, small_specs)

    second, _ = _distributed_engine(tmp_path, workers=2)
    resumed = second.run(artifacts_ds03, small_specs)
    assert resumed == serial_results
    assert second.last_stats.cache_hits == len(small_specs)
    assert second.last_stats.executed == 0  # zero duplicate replays


def test_chaos_killed_worker_redispatches_and_completes(
    tmp_path, artifacts_ds03, small_specs, serial_results
):
    """A worker hard-exits mid-batch; its leased cell must be reclaimed
    and the run must still produce serial-identical output.

    One worker with ``chaos_exit_after=1`` makes the sequence
    deterministic: it leases two cells, acks one, dies — the fleet is
    now empty, so the coordinator releases the orphaned lease and drains
    inline, dispatching that cell a second time."""
    engine, backend = _distributed_engine(
        tmp_path, workers=1, batch=2, lease_s=30.0, chaos_exit_after=1
    )
    results = engine.run(artifacts_ds03, small_specs)
    assert results == serial_results
    assert backend.last_workers_lost == 1
    assert backend.last_redispatched >= 1
    assert engine.last_stats.redispatched == backend.last_redispatched
    assert engine.last_stats.executed == len(small_specs)


def test_published_rows_survive_for_resume_after_chaos(
    tmp_path, artifacts_ds03, small_specs, serial_results
):
    """After a chaos run, every row is in the shared store: a clean
    restart is a 100% cache-hit run."""
    chaos, _ = _distributed_engine(
        tmp_path, workers=1, batch=2, lease_s=30.0, chaos_exit_after=1
    )
    chaos.run(artifacts_ds03, small_specs)

    clean, _ = _distributed_engine(tmp_path, workers=2)
    resumed = clean.run(artifacts_ds03, small_specs)
    assert resumed == serial_results
    assert clean.last_stats.executed == 0


def test_distributed_requires_a_store(tmp_path, artifacts_ds03, small_specs):
    backend = DistributedBackend(tmp_path / "share", workers=1)
    with pytest.raises(ReproError, match="shared store"):
        FleetEngine(cache=None, backend=backend).run(
            artifacts_ds03, small_specs
        )


def test_failures_cross_the_queue_with_their_tracebacks(
    tmp_path, artifacts_ds03, small_specs
):
    from repro.fleet.engine import FleetError

    bad = RunSpec(artifacts_ds03.name, "warp-drive", 0, 2014)
    engine, _ = _distributed_engine(tmp_path, workers=2)
    with pytest.raises(FleetError) as excinfo:
        engine.run(artifacts_ds03, list(small_specs[:1]) + [bad])
    failure = excinfo.value.failures[0]
    assert failure.spec == bad
    assert failure.exc_type == "GovernorError"
    assert "Traceback" in failure.traceback_text
    assert engine.last_stats.executed == 1


def test_ack_many_completes_a_batch_in_one_transaction(tmp_path):
    specs = enumerate_sweep_specs("02", ["a"], 3, 2014)
    queue = _queue(tmp_path)
    queue.enqueue("run", _cells(specs))
    queue.lease("run", "w0", batch=3, lease_s=30.0)
    queue.ack_many(
        "run",
        [
            (0, {"x": 0}, None, {"pid": 1}),
            (2, None, {"exc_type": "Boom"}, {"pid": 1}),
        ],
    )
    assert queue.counts("run") == {"done": 2, "leased": 1}
    done = queue.done_cells("run", skip=set())
    assert done == [
        (0, {"x": 0}, None, {"pid": 1}),
        (2, None, {"exc_type": "Boom"}, {"pid": 1}),
    ]
    # an empty batch is a no-op, and single ack delegates to the batch path
    queue.ack_many("run", [])
    queue.ack("run", 1, row={"x": 1}, failure=None, telemetry={})
    assert queue.counts("run") == {"done": 3}


def test_queue_runs_in_wal_mode_with_normal_sync(tmp_path):
    """Durability posture: WAL journal (persisted in the db), NORMAL sync.

    The queue is coordination-only — rows are published to the record
    store *before* the ack — so losing the last ack transaction in a
    power cut only re-dispatches work, never loses results.
    """
    queue = _queue(tmp_path)

    def pragmas(conn):
        return (
            conn.execute("PRAGMA journal_mode").fetchone()[0],
            conn.execute("PRAGMA synchronous").fetchone()[0],
        )

    journal, sync = queue._read(pragmas)
    assert journal == "wal"
    assert sync == 1  # NORMAL


def test_batch_option_parses_and_validates(tmp_path):
    backend = DistributedBackend.from_opts(
        {"dir": str(tmp_path / "share"), "batch": "4"}
    )
    assert backend.batch == 4
    assert "batch=4" in backend.describe()
    with pytest.raises(ReproError, match="at least one"):
        DistributedBackend(tmp_path / "share", batch=0)
    with pytest.raises(ReproError):
        DistributedBackend.from_opts(
            {"dir": str(tmp_path / "share"), "batch": "-1"}
        )

"""Tests for the content-addressed result cache."""

import pytest

from repro.fleet.cache import ResultCache, workload_fingerprint
from repro.fleet.engine import FleetEngine, execute_spec
from repro.fleet.spec import RunSpec, enumerate_sweep_specs

CONFIGS = ["fixed:300000", "ondemand"]


@pytest.fixture(scope="module")
def specs(artifacts_ds03):
    return enumerate_sweep_specs(
        artifacts_ds03.name, CONFIGS, 1, artifacts_ds03.recording_master_seed
    )


def test_store_load_roundtrip(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    fingerprint = workload_fingerprint(artifacts_ds03)
    key = cache.key_for(specs[0], fingerprint)
    assert cache.load(key) is None
    result = execute_spec(artifacts_ds03, specs[0])
    cache.store(key, result)
    assert cache.contains(key)
    assert cache.load(key) == result
    assert cache.entry_count() == 1


def test_warm_rerun_executes_nothing(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    engine = FleetEngine(jobs=2, cache=cache)
    cold = engine.run(artifacts_ds03, specs)
    assert engine.last_stats.executed == len(specs)
    assert engine.last_stats.cache_hits == 0

    warm = engine.run(artifacts_ds03, specs)
    assert engine.last_stats.executed == 0
    assert engine.last_stats.cache_hits == len(specs)
    assert warm == cold


def test_key_depends_on_spec_identity(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    fingerprint = workload_fingerprint(artifacts_ds03)
    base = specs[0]
    key = cache.key_for(base, fingerprint)
    reseeded = RunSpec(base.dataset, base.config, base.rep, base.master_seed + 1)
    assert cache.key_for(reseeded, fingerprint) != key
    assert cache.key_for(base, "0" * 64) != key


def test_key_depends_on_simulator_code(tmp_path, artifacts_ds03, specs, monkeypatch):
    import repro.fleet.cache as cache_mod

    cache = ResultCache(tmp_path)
    fingerprint = workload_fingerprint(artifacts_ds03)
    key = cache.key_for(specs[0], fingerprint)
    # Editing any repro module changes the code fingerprint, which must
    # invalidate every cached cell rather than serve stale results.
    monkeypatch.setattr(cache_mod, "_CODE_FINGERPRINT", "0" * 64)
    assert cache.key_for(specs[0], fingerprint) != key


def test_fingerprint_tracks_artifact_content(artifacts_ds03):
    from dataclasses import replace

    fingerprint = workload_fingerprint(artifacts_ds03)
    assert fingerprint == artifacts_ds03.fingerprint()
    edited = replace(artifacts_ds03, duration_us=artifacts_ds03.duration_us + 1)
    assert workload_fingerprint(edited) != fingerprint
    reseeded = replace(artifacts_ds03, recording_master_seed=7)
    assert workload_fingerprint(reseeded) != fingerprint


def test_corrupt_entry_is_a_miss_and_reexecuted(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    engine = FleetEngine(jobs=1, cache=cache)
    engine.run(artifacts_ds03, specs[:1])
    fingerprint = workload_fingerprint(artifacts_ds03)
    path = cache.path_for(cache.key_for(specs[0], fingerprint))
    path.write_bytes(b"not a pickle")

    results = engine.run(artifacts_ds03, specs[:1])
    assert engine.last_stats.executed == 1
    assert engine.last_stats.cache_hits == 0
    # The fresh result replaced the corrupt entry.
    assert cache.load(cache.key_for(specs[0], fingerprint)) == results[0]


def test_cache_hits_reported_as_cached_progress(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    FleetEngine(jobs=1, cache=cache).run(artifacts_ds03, specs)
    observed = []
    engine = FleetEngine(
        jobs=1, cache=cache,
        progress=lambda spec, cached: observed.append((spec.label(), cached)),
    )
    engine.run(artifacts_ds03, specs)
    assert observed == [(s.label(), True) for s in specs]


def test_key_incorporates_governor_parameters(tmp_path, artifacts_ds03):
    """Regression: two parameterizations of one governor must never collide.

    Governor parameters reach a spec two ways — embedded in the config
    string or as the ``tunables`` field — and both must distinguish the
    cache cell from the bare governor name.
    """
    cache = ResultCache(tmp_path)
    fingerprint = workload_fingerprint(artifacts_ds03)
    seed = artifacts_ds03.recording_master_seed
    bare = RunSpec(artifacts_ds03.name, "qoe_aware", 0, seed)
    in_string = RunSpec(
        artifacts_ds03.name, "qoe_aware:boost=1036800,settle=40000", 0, seed
    )
    other_string = RunSpec(
        artifacts_ds03.name, "qoe_aware:boost=1036800,settle=60000", 0, seed
    )
    as_tunables = RunSpec(
        artifacts_ds03.name, "qoe_aware", 0, seed,
        tunables=(("boost_freq_khz", 1036800),),
    )
    keys = [
        cache.key_for(spec, fingerprint)
        for spec in (bare, in_string, other_string, as_tunables)
    ]
    assert len(set(keys)) == len(keys)


def test_scenario_identity_flows_into_cache_keys(tmp_path):
    """Scenario specs address distinct cells per persona/seed/duration/profile.

    The canonical scenario string is the spec's ``dataset`` and part of
    the workload fingerprint, so any change to the scenario's identity
    must change the content address.
    """
    from repro.scenarios.config import canonical_scenario

    cache = ResultCache(tmp_path)
    fingerprint = "f" * 64
    scenarios = [
        "persona=gamer,seed=7,duration=2m",
        "persona=gamer,seed=8,duration=2m",
        "persona=reader,seed=7,duration=2m",
        "persona=gamer,seed=7,duration=3m",
        "persona=gamer,seed=7,duration=2m,profile=quad_ls",
    ]
    keys = [
        cache.key_for(
            RunSpec(canonical_scenario(s), "ondemand", 0, 2014), fingerprint
        )
        for s in scenarios
    ]
    assert len(set(keys)) == len(keys)
    # Spelling does not split cells: canonicalisation collapses it.
    respelled = cache.key_for(
        RunSpec(
            canonical_scenario("seed=7,persona=gamer,duration=120s"),
            "ondemand", 0, 2014,
        ),
        fingerprint,
    )
    assert respelled == keys[0]


def test_scenario_recordings_fingerprint_by_seed():
    """Two seeds of one persona record different traces → different keys."""
    from repro.harness.experiment import record_workload
    from repro.workloads.datasets import dataset

    a = record_workload(dataset("persona=messenger,seed=1,duration=45s"))
    b = record_workload(dataset("persona=messenger,seed=2,duration=45s"))
    assert workload_fingerprint(a) != workload_fingerprint(b)


def test_differently_spelled_configs_share_a_sweep_cache_cell(
    tmp_path, artifacts_ds03
):
    """The sweep canonicalises spellings, so both hit the same cell."""
    from repro.harness.sweep import fixed_configs, run_sweep

    cache = ResultCache(tmp_path)
    canonical = "qoe_aware:boost=1036800,settle=40000"
    grid = fixed_configs() + ["qoe_aware:settle=40_000,boost=1_036_800"]
    spelled = run_sweep(artifacts_ds03, reps=1, cache=cache, configs=grid)
    assert canonical in spelled.runs

    hits_before = cache.hits
    rerun = run_sweep(
        artifacts_ds03, reps=1, cache=cache,
        configs=fixed_configs() + [canonical],
    )
    # Every cell — including the re-spelled candidate — was already cached.
    assert cache.hits - hits_before == len(fixed_configs()) + 1
    assert rerun.runs[canonical] == spelled.runs[canonical]

"""Tests for the content-addressed result cache."""

import pytest

from repro.fleet.cache import ResultCache, workload_fingerprint
from repro.fleet.engine import FleetEngine, execute_spec
from repro.fleet.spec import RunSpec, enumerate_sweep_specs

CONFIGS = ["fixed:300000", "ondemand"]


@pytest.fixture(scope="module")
def specs(artifacts_ds03):
    return enumerate_sweep_specs(
        artifacts_ds03.name, CONFIGS, 1, artifacts_ds03.recording_master_seed
    )


def test_store_load_roundtrip(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    fingerprint = workload_fingerprint(artifacts_ds03)
    key = cache.key_for(specs[0], fingerprint)
    assert cache.load(key) is None
    result = execute_spec(artifacts_ds03, specs[0])
    cache.store(key, result)
    assert cache.contains(key)
    assert cache.load(key) == result
    assert cache.entry_count() == 1


def test_warm_rerun_executes_nothing(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    engine = FleetEngine(jobs=2, cache=cache)
    cold = engine.run(artifacts_ds03, specs)
    assert engine.last_stats.executed == len(specs)
    assert engine.last_stats.cache_hits == 0

    warm = engine.run(artifacts_ds03, specs)
    assert engine.last_stats.executed == 0
    assert engine.last_stats.cache_hits == len(specs)
    assert warm == cold


def test_key_depends_on_spec_identity(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    fingerprint = workload_fingerprint(artifacts_ds03)
    base = specs[0]
    key = cache.key_for(base, fingerprint)
    reseeded = RunSpec(base.dataset, base.config, base.rep, base.master_seed + 1)
    assert cache.key_for(reseeded, fingerprint) != key
    assert cache.key_for(base, "0" * 64) != key


def test_key_depends_on_simulator_code(tmp_path, artifacts_ds03, specs, monkeypatch):
    import repro.fleet.cache as cache_mod

    cache = ResultCache(tmp_path)
    fingerprint = workload_fingerprint(artifacts_ds03)
    key = cache.key_for(specs[0], fingerprint)
    # Editing any repro module changes the code fingerprint, which must
    # invalidate every cached cell rather than serve stale results.
    monkeypatch.setattr(cache_mod, "_CODE_FINGERPRINT", "0" * 64)
    assert cache.key_for(specs[0], fingerprint) != key


def test_fingerprint_tracks_artifact_content(artifacts_ds03):
    from dataclasses import replace

    fingerprint = workload_fingerprint(artifacts_ds03)
    assert fingerprint == artifacts_ds03.fingerprint()
    edited = replace(artifacts_ds03, duration_us=artifacts_ds03.duration_us + 1)
    assert workload_fingerprint(edited) != fingerprint
    reseeded = replace(artifacts_ds03, recording_master_seed=7)
    assert workload_fingerprint(reseeded) != fingerprint


def test_corrupt_entry_is_a_miss_and_reexecuted(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    engine = FleetEngine(jobs=1, cache=cache)
    engine.run(artifacts_ds03, specs[:1])
    fingerprint = workload_fingerprint(artifacts_ds03)
    path = cache.path_for(cache.key_for(specs[0], fingerprint))
    path.write_bytes(b"not a pickle")

    results = engine.run(artifacts_ds03, specs[:1])
    assert engine.last_stats.executed == 1
    assert engine.last_stats.cache_hits == 0
    # The fresh result replaced the corrupt entry.
    assert cache.load(cache.key_for(specs[0], fingerprint)) == results[0]


def test_cache_hits_reported_as_cached_progress(tmp_path, artifacts_ds03, specs):
    cache = ResultCache(tmp_path)
    FleetEngine(jobs=1, cache=cache).run(artifacts_ds03, specs)
    observed = []
    engine = FleetEngine(
        jobs=1, cache=cache,
        progress=lambda spec, cached: observed.append((spec.label(), cached)),
    )
    engine.run(artifacts_ds03, specs)
    assert observed == [(s.label(), True) for s in specs]

"""Tests for the fleet engine: parallel equality, ordering, failures."""

import pytest

from repro.core.errors import ReproError
from repro.fleet.engine import FleetEngine, FleetError
from repro.fleet.spec import RunSpec, enumerate_sweep_specs

# A deliberately small grid: the cheapest and dearest OPP plus a governor.
SMALL_CONFIGS = ["fixed:300000", "fixed:2150400", "ondemand"]


@pytest.fixture(scope="module")
def small_specs(artifacts_ds03):
    return enumerate_sweep_specs(
        artifacts_ds03.name, SMALL_CONFIGS, 2, artifacts_ds03.recording_master_seed
    )


@pytest.fixture(scope="module")
def serial_results(artifacts_ds03, small_specs):
    return FleetEngine(jobs=1).run(artifacts_ds03, small_specs)


def test_parallel_results_bit_identical_to_serial(
    artifacts_ds03, small_specs, serial_results
):
    parallel = FleetEngine(jobs=3).run(artifacts_ds03, small_specs)
    assert parallel == serial_results


def test_results_come_back_in_spec_order(small_specs, serial_results):
    assert [(r.config, r.rep) for r in serial_results] == [
        (s.config, s.rep) for s in small_specs
    ]


def test_progress_hook_sees_every_spec(artifacts_ds03, small_specs):
    observed = []
    engine = FleetEngine(
        jobs=2, progress=lambda spec, cached: observed.append((spec, cached))
    )
    engine.run(artifacts_ds03, small_specs)
    assert sorted(s.label() for s, _ in observed) == sorted(
        s.label() for s in small_specs
    )
    assert all(not cached for _, cached in observed)


@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_failure_is_captured_and_raised(artifacts_ds03, small_specs, jobs):
    bad = RunSpec(artifacts_ds03.name, "warp-drive", 0, 2014)
    with pytest.raises(FleetError) as excinfo:
        FleetEngine(jobs=jobs).run(artifacts_ds03, small_specs[:1] + [bad])
    error = excinfo.value
    assert len(error.failures) == 1
    failure = error.failures[0]
    assert failure.spec == bad
    assert failure.exc_type == "GovernorError"
    assert "warp-drive" in failure.message
    # The worker's traceback travels home for diagnosis.
    assert "Traceback" in failure.traceback_text
    assert "warp-drive" in str(error)


def test_surviving_specs_still_run_alongside_a_failure(artifacts_ds03, small_specs):
    bad = RunSpec(artifacts_ds03.name, "warp-drive", 0, 2014)
    engine = FleetEngine(jobs=2)
    with pytest.raises(FleetError):
        engine.run(artifacts_ds03, small_specs[:2] + [bad])
    assert engine.last_stats.executed == 2
    assert engine.last_stats.failures == 1


def test_zero_workers_rejected():
    with pytest.raises(ReproError):
        FleetEngine(jobs=0)


# --- accounting consistency ---------------------------------------------------------


def test_failed_cells_keep_summaries_consistent_with_executed(
    artifacts_ds03, small_specs
):
    """Regression: failed cells' telemetry used to be appended to
    ``run_telemetry``, so the worker and straggler summaries counted runs
    that ``executed`` did not."""
    bad = RunSpec(artifacts_ds03.name, "warp-drive", 0, 2014)
    engine = FleetEngine(jobs=2)
    with pytest.raises(FleetError):
        engine.run(artifacts_ds03, small_specs[:2] + [bad])
    stats = engine.last_stats
    assert stats.executed == 2
    assert stats.failures == 1
    assert len(stats.run_telemetry) == stats.executed
    assert len(stats.failure_telemetry) == stats.failures
    assert stats.straggler_summary()["runs"] == stats.executed
    assert (
        sum(w["runs"] for w in stats.worker_summary().values())
        == stats.executed
    )


def test_fallback_reason_counted_even_when_full_rerun_fails(
    artifacts_ds03, small_specs, serial_results
):
    """Regression: a demand cell that fell back and then failed its full
    rerun skipped the ``fallback_reasons`` count, hiding the fallback
    from telemetry.  Driven through a stub backend so the
    fallback-then-failure sequence is deterministic."""
    from repro.fleet.backends.registry import FleetBackend
    from repro.fleet.engine import WorkerFailure

    row = serial_results[0].to_json_dict()
    failure = WorkerFailure(
        spec=small_specs[1],
        exc_type="ReplayError",
        message="boom",
        traceback_text="Traceback (most recent call last): boom",
    )

    class StubBackend(FleetBackend):
        name = "stub"

        def execute(
            self, artifacts, pending, demand_trace=None, keys=None, store=None
        ):
            # cell 0: fell back, full rerun succeeded
            yield 0, row, None, {
                "pid": 1, "wall_s": 1.0, "cpu_s": 1.0, "mode": "full",
                "fallback_reason": "divergence",
            }
            # cell 1: fell back, full rerun failed
            yield 1, None, failure, {
                "pid": 1, "wall_s": 1.0, "cpu_s": 1.0, "mode": "full",
                "fallback_reason": "divergence",
            }

    engine = FleetEngine(backend=StubBackend())
    with pytest.raises(FleetError):
        engine.run(artifacts_ds03, list(small_specs[:2]))
    stats = engine.last_stats
    assert stats.backend == "stub"
    # both fallbacks counted, outcome notwithstanding…
    assert stats.fallback_reasons == {"divergence": 2}
    # …but only the successful cell is a fallback *cell* (a full_cells
    # member), and the summaries still agree with executed.
    assert stats.fallback_cells == 1
    assert stats.executed == 1
    assert stats.full_cells == 1
    assert stats.straggler_summary()["runs"] == stats.executed

"""Tests for aggregated progress/ETA reporting and JSONL telemetry."""

import io
import json

from repro.fleet.progress import ProgressReporter
from repro.fleet.spec import enumerate_sweep_specs


class FakeClock:
    """An injectable monotonic clock advanced by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _reporter():
    stream = io.StringIO()
    specs = enumerate_sweep_specs("02", ["a", "b", "c"], 2, 2014)
    reporter = ProgressReporter("02", stream=stream).bind(specs)
    return reporter, specs, stream


def test_lines_show_positions_and_totals():
    reporter, specs, stream = _reporter()
    reporter(specs[0], cached=False)
    reporter(specs[3], cached=False)
    lines = stream.getvalue().splitlines()
    assert "(config 1/3, rep 1/2)" in lines[0]
    assert "1/6 runs" in lines[0]
    assert "(config 2/3, rep 2/2)" in lines[1]
    assert "2/6 runs" in lines[1]
    assert reporter.done == 2


def test_cached_runs_are_marked_and_excluded_from_eta():
    reporter, specs, stream = _reporter()
    for spec in specs:
        reporter(spec, cached=True)
    lines = stream.getvalue().splitlines()
    assert all(line.endswith("[cached]") for line in lines)
    assert all("ETA" not in line for line in lines)
    assert reporter.cached == len(specs)


def test_eta_appears_once_real_runs_complete():
    reporter, specs, stream = _reporter()
    reporter(specs[0], cached=False)
    line = stream.getvalue().splitlines()[0]
    assert "ETA" in line


def test_unbound_reporter_does_not_crash():
    stream = io.StringIO()
    reporter = ProgressReporter("02", stream=stream)
    specs = enumerate_sweep_specs("02", ["a"], 1, 2014)
    reporter(specs[0], cached=False)
    assert "1/1 runs" in stream.getvalue()


# --- edge cases ---------------------------------------------------------------------


def test_zero_total_grid_binds_and_summarises_cleanly():
    """An empty spec list must not divide by zero anywhere."""
    from repro.fleet.engine import FleetStats

    jsonl = io.StringIO()
    reporter = ProgressReporter(
        "empty", stream=io.StringIO(), jsonl_stream=jsonl
    ).bind([])
    assert reporter.eta_seconds() is None
    reporter.fleet_summary(FleetStats(total=0))
    events = [json.loads(line) for line in jsonl.getvalue().splitlines()]
    assert [event["event"] for event in events] == ["grid_bound", "fleet_summary"]
    assert events[0]["total"] == 0
    assert events[1]["stragglers"] is None


def test_fully_cached_warm_run_has_no_eta():
    """All-cached grids have no executed runs to extrapolate from."""
    clock = FakeClock()
    specs = enumerate_sweep_specs("02", ["a", "b"], 2, 2014)
    reporter = ProgressReporter(
        "02", stream=io.StringIO(), clock=clock
    ).bind(specs)
    for spec in specs:
        clock.advance(1.0)
        reporter(spec, cached=True)
        assert reporter.eta_seconds() is None
    assert reporter.cached == len(specs)


def test_eta_decreases_monotonically_at_steady_pace():
    """Constant per-run cost: each completion must shrink the estimate."""
    clock = FakeClock()
    specs = enumerate_sweep_specs("02", ["a", "b", "c"], 3, 2014)
    reporter = ProgressReporter(
        "02", stream=io.StringIO(), clock=clock
    ).bind(specs)
    etas = []
    for spec in specs:
        clock.advance(2.0)
        reporter(spec, cached=False)
        eta = reporter.eta_seconds()
        if eta is not None:
            etas.append(eta)
    assert len(etas) == len(specs) - 1  # last run leaves nothing remaining
    assert etas == sorted(etas, reverse=True)
    assert all(
        later < earlier for earlier, later in zip(etas, etas[1:])
    )


def test_jsonl_events_are_seq_ordered_and_complete():
    clock = FakeClock()
    jsonl = io.StringIO()
    specs = enumerate_sweep_specs("02", ["a", "b"], 1, 2014)
    reporter = ProgressReporter(
        "02", stream=io.StringIO(), jsonl_stream=jsonl, clock=clock,
        heartbeat_s=1e9,
    ).bind(specs)
    for spec in specs:
        reporter.observe(
            spec, cached=False,
            telemetry={"pid": 42, "wall_s": 0.5, "cpu_s": 0.4},
        )
    events = [json.loads(line) for line in jsonl.getvalue().splitlines()]
    assert [event["seq"] for event in events] == list(range(len(events)))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "grid_bound"
    completed = [event for event in events if event["event"] == "run_completed"]
    assert len(completed) == len(specs)
    assert [event["done"] for event in completed] == [1, 2]
    assert all(event["worker_pid"] == 42 for event in completed)


def test_seq_continues_across_rebinds_like_a_study():
    """cmd_study reuses one reporter per workload; seq must not restart."""
    jsonl = io.StringIO()
    reporter = ProgressReporter(
        "study", stream=io.StringIO(), jsonl_stream=jsonl, heartbeat_s=1e9
    )
    for label in ("02", "03"):
        reporter.label = label
        specs = enumerate_sweep_specs(label, ["a"], 1, 2014)
        reporter.bind(specs)
        reporter(specs[0], cached=False)
    events = [json.loads(line) for line in jsonl.getvalue().splitlines()]
    assert [event["seq"] for event in events] == list(range(len(events)))
    bounds = [event for event in events if event["event"] == "grid_bound"]
    assert [bound["label"] for bound in bounds] == ["02", "03"]
    # the rebind reset the grid counters
    assert events[-1]["done"] == 1


def test_rebind_resets_worker_aggregates_and_heartbeat_pacing():
    """Regression: bind() once forgot _workers/_last_heartbeat, so a
    study's second workload inherited the first grid's worker aggregates
    (its fleet_summary over-counted runs) and its first heartbeat could
    be suppressed by the previous grid's pacing."""
    from repro.fleet.engine import FleetStats

    clock = FakeClock()
    jsonl = io.StringIO()
    reporter = ProgressReporter(
        "study", stream=io.StringIO(), jsonl_stream=jsonl, clock=clock,
        heartbeat_s=10.0,
    )
    specs_a = enumerate_sweep_specs("02", ["a"], 1, 2014)
    reporter.bind(specs_a)
    reporter.observe(
        specs_a[0], telemetry={"pid": 11, "wall_s": 1.0, "cpu_s": 0.9}
    )
    clock.advance(9.0)  # next heartbeat would be suppressed until t=10

    specs_b = enumerate_sweep_specs("03", ["a"], 1, 2014)
    reporter.bind(specs_b)
    reporter.observe(
        specs_b[0], telemetry={"pid": 22, "wall_s": 2.0, "cpu_s": 1.8}
    )
    reporter.fleet_summary(FleetStats(total=1, executed=1))

    events = [json.loads(line) for line in jsonl.getvalue().splitlines()]
    summary = events[-1]
    assert summary["event"] == "fleet_summary"
    # only the second grid's worker — pid 11's aggregates are gone
    assert [worker["pid"] for worker in summary["workers"]] == [22]
    assert summary["workers"][0] == {
        "pid": 22, "runs": 1, "wall_s": 2.0, "cpu_s": 1.8,
    }
    # the rebind cleared heartbeat pacing: the new grid's first
    # observation heartbeats immediately instead of waiting out the old
    # grid's interval
    beats = [event for event in events if event["event"] == "heartbeat"]
    assert [sorted(beat["workers"]) for beat in beats] == [["11"], ["22"]]


def test_eta_excludes_one_time_capture_seconds():
    """Regression: eta_seconds() folded the one-time demand-capture wall
    time into the per-cell extrapolation, wildly overestimating small
    grids."""
    clock = FakeClock()
    specs = enumerate_sweep_specs("02", ["a"], 4, 2014)
    reporter = ProgressReporter(
        "02", stream=io.StringIO(), clock=clock
    ).bind(specs)
    clock.advance(30.0)  # demand-trace capture: paid once, not per cell
    reporter.note_capture_seconds(30.0)
    clock.advance(2.0)
    reporter(specs[0], cached=False)
    # 1 executed cell in 2s of per-cell time -> 3 remaining ≈ 6s, not
    # the 96s a naive (elapsed/executed)*remaining would claim.
    assert reporter.eta_seconds() == 6.0


def test_capture_allowance_does_not_survive_rebind():
    """The next grid captures (or not) on its own; a stale allowance
    would deflate its ETA."""
    clock = FakeClock()
    reporter = ProgressReporter("study", stream=io.StringIO(), clock=clock)
    specs_a = enumerate_sweep_specs("02", ["a"], 2, 2014)
    reporter.bind(specs_a)
    reporter.note_capture_seconds(100.0)
    specs_b = enumerate_sweep_specs("03", ["a"], 2, 2014)
    reporter.bind(specs_b)
    clock.advance(4.0)
    reporter(specs_b[0], cached=False)
    assert reporter.eta_seconds() == 4.0


def test_eta_never_negative_when_capture_overlaps_elapsed():
    """A capture allowance larger than elapsed clamps at zero instead of
    extrapolating a negative remainder."""
    clock = FakeClock()
    specs = enumerate_sweep_specs("02", ["a"], 2, 2014)
    reporter = ProgressReporter(
        "02", stream=io.StringIO(), clock=clock
    ).bind(specs)
    clock.advance(1.0)
    reporter.note_capture_seconds(5.0)
    reporter(specs[0], cached=False)
    assert reporter.eta_seconds() == 0.0


def test_heartbeats_are_rate_limited_by_the_injected_clock():
    clock = FakeClock()
    jsonl = io.StringIO()
    specs = enumerate_sweep_specs("02", ["a"], 6, 2014)
    reporter = ProgressReporter(
        "02", stream=io.StringIO(), jsonl_stream=jsonl, clock=clock,
        heartbeat_s=10.0,
    ).bind(specs)
    for spec in specs:
        clock.advance(3.0)
        reporter(spec, cached=False)
    beats = [
        json.loads(line)
        for line in jsonl.getvalue().splitlines()
        if json.loads(line)["event"] == "heartbeat"
    ]
    # 18s of run at one beat per 10s: the first observation beats, then
    # one more once the interval has elapsed.
    assert len(beats) == 2
    assert beats[-1]["done"] > beats[0]["done"]


def test_heartbeat_zero_interval_beats_every_observation():
    jsonl = io.StringIO()
    specs = enumerate_sweep_specs("02", ["a"], 3, 2014)
    reporter = ProgressReporter(
        "02", stream=io.StringIO(), jsonl_stream=jsonl, heartbeat_s=0.0
    ).bind(specs)
    for spec in specs:
        reporter(spec, cached=False)
    kinds = [
        json.loads(line)["event"] for line in jsonl.getvalue().splitlines()
    ]
    assert kinds.count("heartbeat") == len(specs)


def test_human_lines_suppressed_in_machine_only_mode():
    stream = io.StringIO()
    jsonl = io.StringIO()
    specs = enumerate_sweep_specs("02", ["a"], 1, 2014)
    reporter = ProgressReporter(
        "02", stream=stream, jsonl_stream=jsonl, human=False
    ).bind(specs)
    reporter(specs[0], cached=False)
    assert stream.getvalue() == ""
    assert jsonl.getvalue() != ""


def test_fleet_jobs2_streams_ordered_telemetry(artifacts_ds03, tmp_path):
    """End to end: a jobs=2 fleet run produces a well-formed JSONL stream."""
    from repro.fleet.engine import FleetEngine
    from repro.fleet.spec import RunSpec

    specs = [
        RunSpec(
            dataset=artifacts_ds03.name,
            config=config,
            rep=0,
            master_seed=artifacts_ds03.recording_master_seed,
        )
        for config in ("fixed:300000", "fixed:652800", "interactive")
    ]
    path = tmp_path / "progress.jsonl"
    with open(path, "w", encoding="utf-8") as jsonl:
        reporter = ProgressReporter(
            artifacts_ds03.name, stream=io.StringIO(), jsonl_stream=jsonl
        ).bind(specs)
        engine = FleetEngine(jobs=2, progress=reporter)
        engine.run(artifacts_ds03, specs)
        reporter.fleet_summary(engine.last_stats)

    events = [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]
    assert [event["seq"] for event in events] == list(range(len(events)))
    completed = [event for event in events if event["event"] == "run_completed"]
    assert len(completed) == len(specs)
    # every executed run carries its worker's telemetry
    assert all(
        event["worker_pid"] > 0 and event["wall_s"] >= 0.0
        for event in completed
    )
    summary = events[-1]
    assert summary["event"] == "fleet_summary"
    assert summary["executed"] == len(specs)
    assert summary["stragglers"]["runs"] == len(specs)
    assert sum(worker["runs"] for worker in summary["workers"]) == len(specs)

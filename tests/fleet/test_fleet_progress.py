"""Tests for aggregated progress/ETA reporting."""

import io

from repro.fleet.progress import ProgressReporter
from repro.fleet.spec import enumerate_sweep_specs


def _reporter():
    stream = io.StringIO()
    specs = enumerate_sweep_specs("02", ["a", "b", "c"], 2, 2014)
    reporter = ProgressReporter("02", stream=stream).bind(specs)
    return reporter, specs, stream


def test_lines_show_positions_and_totals():
    reporter, specs, stream = _reporter()
    reporter(specs[0], cached=False)
    reporter(specs[3], cached=False)
    lines = stream.getvalue().splitlines()
    assert "(config 1/3, rep 1/2)" in lines[0]
    assert "1/6 runs" in lines[0]
    assert "(config 2/3, rep 2/2)" in lines[1]
    assert "2/6 runs" in lines[1]
    assert reporter.done == 2


def test_cached_runs_are_marked_and_excluded_from_eta():
    reporter, specs, stream = _reporter()
    for spec in specs:
        reporter(spec, cached=True)
    lines = stream.getvalue().splitlines()
    assert all(line.endswith("[cached]") for line in lines)
    assert all("ETA" not in line for line in lines)
    assert reporter.cached == len(specs)


def test_eta_appears_once_real_runs_complete():
    reporter, specs, stream = _reporter()
    reporter(specs[0], cached=False)
    line = stream.getvalue().splitlines()[0]
    assert "ETA" in line


def test_unbound_reporter_does_not_crash():
    stream = io.StringIO()
    reporter = ProgressReporter("02", stream=stream)
    specs = enumerate_sweep_specs("02", ["a"], 1, 2014)
    reporter(specs[0], cached=False)
    assert "1/1 runs" in stream.getvalue()

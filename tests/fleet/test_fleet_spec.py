"""Tests for run specs and the sweep-grid enumerator."""

import pickle

from repro.fleet.spec import RunSpec, enumerate_sweep_specs, freeze_tunables


def test_enumerator_is_config_major_serial_order():
    specs = enumerate_sweep_specs("02", ["a", "b"], 3, 2014)
    assert [(s.config, s.rep) for s in specs] == [
        ("a", 0), ("a", 1), ("a", 2),
        ("b", 0), ("b", 1), ("b", 2),
    ]
    assert all(s.dataset == "02" and s.master_seed == 2014 for s in specs)


def test_spec_is_hashable_and_picklable():
    spec = RunSpec("02", "ondemand", 1, 2014, (("up_threshold", 80),))
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert len({spec, spec}) == 1


def test_freeze_tunables_sorts_and_normalises():
    assert freeze_tunables(None) == ()
    assert freeze_tunables({}) == ()
    frozen = freeze_tunables({"b": 2, "a": 1})
    assert frozen == (("a", 1), ("b", 2))
    assert freeze_tunables(frozen) == frozen


def test_cache_token_is_canonical():
    one = RunSpec("02", "ondemand", 1, 2014, freeze_tunables({"b": 2, "a": 1}))
    two = RunSpec("02", "ondemand", 1, 2014, freeze_tunables({"a": 1, "b": 2}))
    assert one.cache_token() == two.cache_token()
    # Every identity field must reach the token.
    assert one.cache_token() != RunSpec("02", "ondemand", 2, 2014).cache_token()
    assert one.cache_token() != RunSpec("02", "ondemand", 1, 7).cache_token()
    assert one.cache_token() != RunSpec("03", "ondemand", 1, 2014).cache_token()


def test_label_names_the_cell():
    assert RunSpec("02", "fixed:300000", 4, 2014).label() == "02:fixed:300000:rep4"


def test_integral_float_tunables_share_the_int_cache_identity():
    """Regression: boost=1 and boost=1.0 replay identically (governors
    coerce numerics) but froze to distinct tunable tuples, so the same
    cell occupied two cache keys and two RNG streams."""
    as_int = freeze_tunables({"boost": 1, "settle": 40000})
    as_float = freeze_tunables({"boost": 1.0, "settle": 40000.0})
    assert as_int == as_float
    one = RunSpec("02", "qoe_aware", 0, 2014, as_int)
    two = RunSpec("02", "qoe_aware", 0, 2014, as_float)
    assert one.cache_token() == two.cache_token()
    # Genuinely fractional values keep their own identity…
    assert freeze_tunables({"x": 1.5}) != freeze_tunables({"x": 1})
    # …and bools never canonicalise to ints: a flag-valued tunable keeps
    # its JSON identity (true/false) distinct from a numeric one.
    flag = RunSpec("02", "g", 0, 2014, freeze_tunables({"x": True}))
    numeric = RunSpec("02", "g", 0, 2014, freeze_tunables({"x": 1}))
    assert freeze_tunables({"x": True}) == (("x", True),)
    assert flag.cache_token() != numeric.cache_token()


def test_cache_token_wire_format_is_pinned():
    """The token is the cache-key payload: changing its shape silently
    orphans every previously cached cell.  Pin the literal bytes."""
    spec = RunSpec(
        "02", "qoe_aware", 0, 2014,
        freeze_tunables({"boost": 1036800, "settle": 40000}),
    )
    assert spec.cache_token() == (
        '{"config":"qoe_aware","dataset":"02","master_seed":2014,'
        '"rep":0,"tunables":[["boost",1036800],["settle",40000]]}'
    )


def test_wire_round_trip_preserves_identity():
    spec = RunSpec(
        "02", "ondemand", 3, 2014, freeze_tunables({"up_threshold": 80.0})
    )
    clone = RunSpec.from_wire(spec.to_wire())
    assert clone == spec
    assert clone.cache_token() == spec.cache_token()

"""Tests for run specs and the sweep-grid enumerator."""

import pickle

from repro.fleet.spec import RunSpec, enumerate_sweep_specs, freeze_tunables


def test_enumerator_is_config_major_serial_order():
    specs = enumerate_sweep_specs("02", ["a", "b"], 3, 2014)
    assert [(s.config, s.rep) for s in specs] == [
        ("a", 0), ("a", 1), ("a", 2),
        ("b", 0), ("b", 1), ("b", 2),
    ]
    assert all(s.dataset == "02" and s.master_seed == 2014 for s in specs)


def test_spec_is_hashable_and_picklable():
    spec = RunSpec("02", "ondemand", 1, 2014, (("up_threshold", 80),))
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert len({spec, spec}) == 1


def test_freeze_tunables_sorts_and_normalises():
    assert freeze_tunables(None) == ()
    assert freeze_tunables({}) == ()
    frozen = freeze_tunables({"b": 2, "a": 1})
    assert frozen == (("a", 1), ("b", 2))
    assert freeze_tunables(frozen) == frozen


def test_cache_token_is_canonical():
    one = RunSpec("02", "ondemand", 1, 2014, freeze_tunables({"b": 2, "a": 1}))
    two = RunSpec("02", "ondemand", 1, 2014, freeze_tunables({"a": 1, "b": 2}))
    assert one.cache_token() == two.cache_token()
    # Every identity field must reach the token.
    assert one.cache_token() != RunSpec("02", "ondemand", 2, 2014).cache_token()
    assert one.cache_token() != RunSpec("02", "ondemand", 1, 7).cache_token()
    assert one.cache_token() != RunSpec("03", "ondemand", 1, 2014).cache_token()


def test_label_names_the_cell():
    assert RunSpec("02", "fixed:300000", 4, 2014).label() == "02:fixed:300000:rep4"

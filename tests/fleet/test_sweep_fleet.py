"""Acceptance tests: the sweep on the fleet engine vs the serial path."""

import pytest

from repro.fleet.cache import ResultCache
from repro.fleet.progress import ProgressReporter
from repro.harness.sweep import run_sweep, sweep_configs


@pytest.fixture(scope="module")
def serial_sweep(artifacts_ds03):
    """The reference: serial, uncached, exactly the seed behaviour."""
    return run_sweep(artifacts_ds03, reps=1)


def test_parallel_sweep_identical_and_warm_rerun_all_cached(
    artifacts_ds03, serial_sweep, tmp_path_factory
):
    cache = ResultCache(tmp_path_factory.mktemp("fleet-cache"))
    parallel = run_sweep(artifacts_ds03, reps=1, jobs=4, cache=cache)
    assert parallel.runs == serial_sweep.runs
    assert parallel.oracle.energy_j == serial_sweep.oracle.energy_j
    assert cache.hits == 0
    total = len(sweep_configs())

    rerun = run_sweep(artifacts_ds03, reps=1, jobs=4, cache=cache)
    assert cache.hits == total  # every completed cell skipped execution
    assert rerun.runs == serial_sweep.runs


def test_legacy_progress_callback_still_works(artifacts_ds03):
    from repro.fleet.engine import FleetEngine
    from repro.fleet.spec import enumerate_sweep_specs
    from repro.harness.sweep import _progress_hook

    specs = enumerate_sweep_specs(
        artifacts_ds03.name,
        ["fixed:300000", "fixed:652800"],
        1,
        artifacts_ds03.recording_master_seed,
    )
    calls = []
    hook = _progress_hook(lambda config, rep: calls.append((config, rep)), specs)
    FleetEngine(jobs=1, progress=hook).run(artifacts_ds03, specs)
    assert calls == [("fixed:300000", 0), ("fixed:652800", 0)]


def test_progress_reporter_binds_to_the_sweep_grid(artifacts_ds03):
    import io

    from repro.fleet.engine import FleetEngine
    from repro.fleet.spec import enumerate_sweep_specs
    from repro.harness.sweep import _progress_hook

    specs = enumerate_sweep_specs(
        artifacts_ds03.name,
        ["fixed:300000", "fixed:652800"],
        1,
        artifacts_ds03.recording_master_seed,
    )
    stream = io.StringIO()
    reporter = ProgressReporter(artifacts_ds03.name, stream=stream)
    FleetEngine(jobs=1, progress=_progress_hook(reporter, specs)).run(
        artifacts_ds03, specs
    )
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert "(config 1/2, rep 1/1)" in lines[0]
    assert "2/2 runs" in lines[1]

"""Shared rig for governor tests: device internals without the UI stack."""

from __future__ import annotations

import pytest

from repro.core.engine import Engine
from repro.device.cpu import CpuCore
from repro.device.cpufreq import CpuFreqPolicy
from repro.device.frequencies import snapdragon_8074_table
from repro.device.input_device import InputSubsystem
from repro.device.loadtracker import LoadTracker
from repro.governors.base import GovernorContext
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import Task


class GovernorRig:
    """Engine + core + policy + scheduler wired like a Device."""

    def __init__(self) -> None:
        self.engine = Engine()
        self.core = CpuCore(self.engine.clock, snapdragon_8074_table())
        self.policy = CpuFreqPolicy(self.engine.clock, self.core)
        self.scheduler = Scheduler(self.engine, self.core)
        self.policy.add_transition_observer(
            lambda _t, _khz: self.scheduler.notify_frequency_change()
        )
        self.input_subsystem = InputSubsystem()
        self.touch_node = self.input_subsystem.register(
            "/dev/input/event1", "touch"
        )

    def context(self) -> GovernorContext:
        return GovernorContext(
            engine=self.engine,
            policy=self.policy,
            load_tracker=LoadTracker(self.engine.clock, self.core),
            input_subsystem=self.input_subsystem,
            scheduler=self.scheduler,
        )

    def submit_work(self, cycles: float, name: str = "work") -> Task:
        task = Task(name, cycles)
        self.scheduler.submit(task)
        return task

    def run(self, duration_us: int) -> None:
        self.engine.run_until(self.engine.now + duration_us)


@pytest.fixture
def rig() -> GovernorRig:
    return GovernorRig()

"""Config-string parsing and the from_params construction hook."""

import pytest

import repro.governors  # noqa: F401  — populate the registry
from repro.core.errors import GovernorError
from repro.governors.base import create_governor
from repro.governors.config import (
    canonical_config,
    config_base,
    format_config,
    parse_config,
)
from repro.governors.interactive import InteractiveGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.qoe_aware import QoeAwareGovernor


class TestParseConfig:
    def test_bare_name(self):
        assert parse_config("ondemand") == ("ondemand", {})

    def test_fixed(self):
        assert parse_config("fixed:960000") == ("fixed", {"khz": 960000})

    def test_parameterized_with_digit_separators(self):
        base, params = parse_config("qoe_aware:boost=1_036_800,settle=40000")
        assert base == "qoe_aware"
        assert params == {"boost": 1_036_800, "settle": 40_000}

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            ":x=1",
            "fixed",
            "fixed:",
            "fixed:abc",
            "qoe_aware:",
            "qoe_aware:boost",
            "qoe_aware:=5",
            "qoe_aware:boost=",
            "qoe_aware:boost=fast",
            "qoe_aware:boost=1,boost=2",
        ],
    )
    def test_malformed_strings_raise_one_line_errors(self, bad):
        with pytest.raises(GovernorError) as excinfo:
            parse_config(bad)
        assert "\n" not in str(excinfo.value)

    def test_canonical_sorts_params_and_strips_separators(self):
        assert (
            canonical_config("qoe_aware:settle=40_000,boost=1_036_800")
            == "qoe_aware:boost=1036800,settle=40000"
        )
        assert canonical_config("ondemand") == "ondemand"
        assert canonical_config("fixed:960_000") == "fixed:960000"

    def test_format_round_trips_parse(self):
        for config in (
            "ondemand",
            "fixed:960000",
            "qoe_aware:boost=1036800,settle=40000",
        ):
            assert format_config(*parse_config(config)) == config

    def test_config_base(self):
        assert config_base("fixed:960000") == "fixed"
        assert config_base("qoe_aware:boost=960000") == "qoe_aware"


class TestFromParams:
    def test_aliases_map_to_constructor_kwargs(self, rig):
        governor = QoeAwareGovernor.from_params(
            rig.context(), {"boost": 1_190_400, "settle": 40_000, "timer": 10_000}
        )
        assert governor.boost_freq_khz == 1_190_400
        assert governor.settle_time_us == 40_000

    def test_unknown_key_lists_known_tunables(self, rig):
        with pytest.raises(GovernorError, match="boost, settle, timer"):
            QoeAwareGovernor.from_params(rig.context(), {"bogus": 1})

    def test_constructor_validation_becomes_governor_error(self, rig):
        with pytest.raises(GovernorError, match="up_threshold"):
            OndemandGovernor.from_params(rig.context(), {"up_threshold": 0})

    def test_param_and_kwarg_conflict_rejected(self, rig):
        with pytest.raises(GovernorError, match="boost_freq_khz"):
            QoeAwareGovernor.from_params(
                rig.context(), {"boost": 960_000}, boost_freq_khz=1_190_400
            )

    def test_explicit_kwargs_still_pass_through(self, rig):
        governor = QoeAwareGovernor.from_params(
            rig.context(), {"boost": 960_000}, settle_time_us=20_000
        )
        assert governor.boost_freq_khz == 960_000
        assert governor.settle_time_us == 20_000


class TestCreateGovernor:
    def test_parameterized_config_string(self, rig):
        governor = create_governor(
            "interactive:hispeed=1_267_200,go_hispeed=85", rig.context()
        )
        assert isinstance(governor, InteractiveGovernor)
        assert governor.hispeed_freq_khz == 1_267_200
        assert governor.go_hispeed_load == 85

    def test_unknown_governor_mentions_base_name(self, rig):
        with pytest.raises(GovernorError, match="'warp'"):
            create_governor("warp:speed=9", rig.context())

    def test_params_on_parameterless_governor_rejected(self, rig):
        with pytest.raises(GovernorError, match="performance"):
            create_governor("performance:x=1", rig.context())

    def test_fixed_still_pins_userspace(self, rig):
        governor = create_governor("fixed:960000", rig.context())
        governor.start()
        assert rig.policy.current_khz == 960_000

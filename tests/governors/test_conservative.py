"""Behavioural tests for the conservative governor."""

import pytest

from repro.governors.conservative import ConservativeGovernor


def make(rig, **tunables):
    tunables.setdefault("sampling_rate_us", 100_000)
    governor = ConservativeGovernor(rig.context(), **tunables)
    governor.start()
    return governor


def test_ramps_gradually_not_jumping(rig):
    make(rig)
    rig.submit_work(3e9)
    rig.run(300_000)
    # After three samples the frequency must have risen but NOT to max.
    assert rig.policy.min_khz < rig.policy.current_khz < rig.policy.max_khz


def test_reaches_max_eventually_under_sustained_load(rig):
    make(rig)
    rig.submit_work(20e9)
    rig.run(4_000_000)
    assert rig.policy.current_khz == rig.policy.max_khz


def test_steps_are_at_most_one_sample_apart(rig):
    make(rig)
    rig.submit_work(5e9)
    rig.run(2_000_000)
    transitions = rig.policy.transitions
    steps = [
        later.freq_khz - earlier.freq_khz
        for earlier, later in zip(transitions, transitions[1:])
    ]
    step_khz = rig.policy.max_khz * 5 // 100
    # Each upward move is bounded by freq_step rounded up to the next OPP.
    assert all(0 < step <= step_khz + 250_000 for step in steps)


def test_comes_down_when_quiet(rig):
    make(rig)
    rig.submit_work(2e9)
    rig.run(3_000_000)   # ramp up and finish
    rig.run(5_000_000)   # long quiet period
    assert rig.policy.current_khz == rig.policy.min_khz


def test_freezes_between_thresholds(rig):
    """Load between down (20) and up (80) thresholds leaves the frequency
    untouched — conservative's defining hysteresis."""
    make(rig, sampling_rate_us=100_000)
    rig.policy.set_target(960_000)
    rig.core.set_frequency(960_000)
    # ~50% duty: 48e6 cycles every 100 ms at 0.96 GHz = 50 ms busy.
    def burst():
        rig.submit_work(48e6)
        rig.engine.schedule_after(100_000, burst)
    burst()
    rig.run(1_000_000)
    assert rig.policy.current_khz == 960_000


def test_invalid_thresholds_rejected(rig):
    with pytest.raises(ValueError):
        ConservativeGovernor(
            rig.context(), up_threshold=20, down_threshold=30
        )
    with pytest.raises(ValueError):
        ConservativeGovernor(rig.context(), freq_step_percent=0)


def test_freq_step_is_five_percent_of_max(rig):
    governor = make(rig)
    assert governor.freq_step_khz == rig.policy.max_khz * 5 // 100

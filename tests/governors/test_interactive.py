"""Behavioural tests for the interactive governor."""

import pytest

from repro.core import events as ev
from repro.governors.interactive import InteractiveGovernor


def make(rig, **tunables):
    governor = InteractiveGovernor(rig.context(), **tunables)
    governor.start()
    return governor


def touch(rig):
    rig.touch_node.emit(
        ev.InputEvent(
            rig.engine.now,
            "/dev/input/event1",
            ev.EV_ABS,
            ev.ABS_MT_TRACKING_ID,
            3,
        )
    )


def test_input_event_boosts_immediately(rig):
    governor = make(rig, hispeed_freq_khz=1_190_400)
    assert rig.policy.current_khz == rig.policy.min_khz
    touch(rig)
    # The boost happens on the event itself, before any sampling timer.
    assert rig.policy.current_khz == 1_190_400
    assert governor.input_boosts == 1


def test_input_boost_ignores_load(rig):
    """Paper: 'immediately ramps up the frequency while ignoring the load'."""
    make(rig, hispeed_freq_khz=960_000)
    rig.run(500_000)  # totally idle
    touch(rig)
    assert rig.policy.current_khz == 960_000


def test_boost_disabled_via_tunable(rig):
    make(rig, input_boost=False)
    touch(rig)
    assert rig.policy.current_khz == rig.policy.min_khz


def test_min_sample_time_holds_before_rampdown(rig):
    governor = make(
        rig, hispeed_freq_khz=1_190_400, min_sample_time_us=80_000
    )
    touch(rig)
    rig.run(40_000)  # idle, but inside min_sample_time
    assert rig.policy.current_khz == 1_190_400
    rig.run(300_000)
    assert rig.policy.current_khz == rig.policy.min_khz


def test_sustained_load_exceeds_hispeed_after_delay(rig):
    make(
        rig,
        hispeed_freq_khz=960_000,
        go_hispeed_load=85,
        above_hispeed_delay_us=40_000,
        timer_rate_us=20_000,
    )
    rig.submit_work(30e9)
    rig.run(1_000_000)
    assert rig.policy.current_khz > 960_000


def test_default_hispeed_is_policy_max(rig):
    governor = make(rig)
    assert governor.hispeed_freq_khz == rig.policy.max_khz


def test_invalid_tunables_rejected(rig):
    with pytest.raises(ValueError):
        InteractiveGovernor(rig.context(), go_hispeed_load=0)
    with pytest.raises(ValueError):
        InteractiveGovernor(rig.context(), target_load=101)


def test_stop_detaches_input_notifier(rig):
    governor = make(rig, hispeed_freq_khz=1_190_400)
    governor.stop()
    touch(rig)
    assert governor.input_boosts == 0
    assert rig.policy.current_khz == rig.policy.min_khz

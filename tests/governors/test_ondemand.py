"""Behavioural tests for the ondemand governor."""

import pytest

from repro.governors.ondemand import OndemandGovernor


def make(rig, **tunables):
    governor = OndemandGovernor(rig.context(), **tunables)
    governor.start()
    return governor


def test_jumps_to_max_under_sustained_load(rig):
    make(rig, sampling_rate_us=20_000)
    rig.submit_work(500e6)
    rig.run(100_000)
    assert rig.policy.current_khz == rig.policy.max_khz


def test_returns_toward_min_when_idle(rig):
    make(rig, sampling_rate_us=20_000, sampling_down_factor=1)
    rig.submit_work(100e6)
    rig.run(2_000_000)
    assert rig.policy.current_khz == rig.policy.min_khz


def test_proportional_target_below_threshold(rig):
    governor = make(rig, sampling_rate_us=100_000, up_threshold=95)
    # ~50% load in the first window: 15e6 cycles at 0.3 GHz = 50 ms.
    rig.submit_work(15e6)
    rig.run(100_000)
    # load 50 -> target = 50 * 300000 / 95 ~ 157 kkHz -> floor -> min.
    assert rig.policy.current_khz == rig.policy.min_khz
    assert governor.samples_taken == 1


def test_sampling_down_factor_holds_max(rig):
    make(rig, sampling_rate_us=20_000, sampling_down_factor=5)
    rig.submit_work(200e6)  # bursts to max, finishes quickly at max
    rig.run(60_000)
    at_burst_end = rig.policy.current_khz
    assert at_burst_end == rig.policy.max_khz
    # Within the hold window the governor must not down-scale.
    rig.run(40_000)
    assert rig.policy.current_khz == rig.policy.max_khz


def test_alternates_between_max_and_min_on_bursty_load(rig):
    """The paper's Fig. 3 description: 'usually alternating between the
    highest and the lowest frequency'."""
    make(rig, sampling_rate_us=20_000, sampling_down_factor=1)
    for start_ms in (0, 300, 600):
        rig.engine.schedule_at(
            start_ms * 1_000, lambda: rig.submit_work(120e6)
        )
    rig.run(1_000_000)
    freqs = {khz for _t, khz in
             ((t.timestamp, t.freq_khz) for t in rig.policy.transitions)}
    assert rig.policy.max_khz in freqs
    assert rig.policy.min_khz in freqs


def test_invalid_tunables_rejected(rig):
    with pytest.raises(ValueError):
        OndemandGovernor(rig.context(), up_threshold=0)
    with pytest.raises(ValueError):
        OndemandGovernor(rig.context(), sampling_down_factor=0)


def test_stop_cancels_sampling(rig):
    governor = make(rig, sampling_rate_us=20_000)
    rig.run(100_000)
    samples = governor.samples_taken
    governor.stop()
    rig.run(100_000)
    assert governor.samples_taken == samples

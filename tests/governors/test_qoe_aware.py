"""Tests for the QoE-aware governor (the paper's future-work direction)."""

import pytest

from repro.core import events as ev
from repro.governors.qoe_aware import QoeAwareGovernor


def make(rig, **tunables):
    governor = QoeAwareGovernor(rig.context(), **tunables)
    governor.start()
    return governor


def touch(rig):
    rig.touch_node.emit(
        ev.InputEvent(
            rig.engine.now,
            "/dev/input/event1",
            ev.EV_ABS,
            ev.ABS_MT_TRACKING_ID,
            3,
        )
    )


def test_starts_at_most_efficient_frequency(rig):
    governor = make(rig)
    assert rig.policy.current_khz == governor.efficient_khz == 960_000


def test_boosts_on_input(rig):
    governor = make(rig)
    touch(rig)
    assert rig.policy.current_khz == governor.boost_freq_khz
    assert governor.boost_freq_khz > governor.efficient_khz


def test_holds_boost_while_work_pending(rig):
    governor = make(rig, settle_time_us=60_000)
    touch(rig)
    rig.submit_work(2e9)
    rig.run(500_000)
    assert rig.policy.current_khz == governor.boost_freq_khz


def test_settles_after_queue_drains(rig):
    governor = make(rig, settle_time_us=60_000)
    touch(rig)
    rig.submit_work(100e6)
    rig.run(3_000_000)
    assert rig.policy.current_khz == governor.efficient_khz


def test_custom_boost_frequency(rig):
    governor = make(rig, boost_freq_khz=2_150_400)
    touch(rig)
    assert rig.policy.current_khz == 2_150_400

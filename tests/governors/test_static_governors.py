"""Tests for performance, powersave and userspace governors + registry."""

import pytest

from repro.core.errors import GovernorError
from repro.governors.base import create_governor, registered_governors
from repro.governors.performance import PerformanceGovernor, PowersaveGovernor
from repro.governors.userspace import UserspaceGovernor


def test_performance_pins_max(rig):
    governor = PerformanceGovernor(rig.context())
    governor.start()
    assert rig.policy.current_khz == rig.policy.max_khz


def test_powersave_pins_min(rig):
    rig.policy.set_target(rig.policy.max_khz)
    governor = PowersaveGovernor(rig.context())
    governor.start()
    assert rig.policy.current_khz == rig.policy.min_khz


def test_userspace_holds_fixed_frequency(rig):
    governor = UserspaceGovernor(rig.context(), fixed_khz=960_000)
    governor.start()
    rig.submit_work(5e9)
    rig.run(3_000_000)
    assert rig.policy.current_khz == 960_000
    assert len(rig.policy.transitions) == 2  # initial + pin


def test_userspace_set_speed(rig):
    governor = UserspaceGovernor(rig.context(), fixed_khz=960_000)
    governor.start()
    governor.set_speed(1_497_600)
    assert rig.policy.current_khz == 1_497_600


def test_userspace_rejects_non_opp(rig):
    with pytest.raises(GovernorError):
        UserspaceGovernor(rig.context(), fixed_khz=123)


def test_registry_contains_all_governors():
    names = registered_governors()
    for expected in (
        "ondemand",
        "conservative",
        "interactive",
        "performance",
        "powersave",
        "userspace",
        "qoe_aware",
    ):
        assert expected in names


def test_create_by_name(rig):
    governor = create_governor("ondemand", rig.context())
    assert governor.name == "ondemand"


def test_create_fixed_shorthand(rig):
    governor = create_governor("fixed:960000", rig.context())
    governor.start()
    assert rig.policy.current_khz == 960_000


def test_create_unknown_rejected(rig):
    with pytest.raises(GovernorError):
        create_governor("turbo", rig.context())


def test_double_start_rejected(rig):
    governor = PerformanceGovernor(rig.context())
    governor.start()
    with pytest.raises(GovernorError):
        governor.start()

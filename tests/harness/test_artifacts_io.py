"""Persistence tests for workload artifacts (the reusable study artefact)."""

from repro.harness.experiment import WorkloadArtifacts, replay_run


def test_save_load_roundtrip(tmp_path, artifacts_ds03):
    artifacts_ds03.save(tmp_path / "ds03")
    loaded = WorkloadArtifacts.load(tmp_path / "ds03")
    assert loaded.name == artifacts_ds03.name
    assert loaded.duration_us == artifacts_ds03.duration_us
    assert loaded.trace.dumps() == artifacts_ds03.trace.dumps()
    assert loaded.database.lag_count == artifacts_ds03.database.lag_count
    assert (
        loaded.classification.as_row()
        == artifacts_ds03.classification.as_row()
    )


def test_loaded_artifacts_replay_identically(tmp_path, artifacts_ds03):
    artifacts_ds03.save(tmp_path / "ds03")
    loaded = WorkloadArtifacts.load(tmp_path / "ds03")
    original = replay_run(artifacts_ds03, "fixed:960000")
    reloaded = replay_run(loaded, "fixed:960000")
    assert (
        original.lag_profile.durations_us()
        == reloaded.lag_profile.durations_us()
    )
    assert original.energy_j == reloaded.energy_j


def test_saved_layout_contains_expected_files(tmp_path, artifacts_ds03):
    artifacts_ds03.save(tmp_path / "ds03")
    root = tmp_path / "ds03"
    assert (root / "trace.getevent").exists()
    assert (root / "meta.json").exists()
    assert (root / "annotations" / "meta.json").exists()
    assert (root / "annotations" / "images.npz").exists()

"""Persistence tests for workload artifacts (the reusable study artefact)."""

import json

import pytest

from repro.core.errors import WorkloadError
from repro.harness.experiment import WorkloadArtifacts, replay_run


def test_save_load_roundtrip(tmp_path, artifacts_ds03):
    artifacts_ds03.save(tmp_path / "ds03")
    loaded = WorkloadArtifacts.load(tmp_path / "ds03")
    assert loaded.name == artifacts_ds03.name
    assert loaded.duration_us == artifacts_ds03.duration_us
    assert loaded.trace.dumps() == artifacts_ds03.trace.dumps()
    assert loaded.database.lag_count == artifacts_ds03.database.lag_count
    assert (
        loaded.classification.as_row()
        == artifacts_ds03.classification.as_row()
    )


def test_loaded_artifacts_replay_identically(tmp_path, artifacts_ds03):
    artifacts_ds03.save(tmp_path / "ds03")
    loaded = WorkloadArtifacts.load(tmp_path / "ds03")
    original = replay_run(artifacts_ds03, "fixed:960000")
    reloaded = replay_run(loaded, "fixed:960000")
    assert (
        original.lag_profile.durations_us()
        == reloaded.lag_profile.durations_us()
    )
    assert original.energy_j == reloaded.energy_j


def test_saved_layout_contains_expected_files(tmp_path, artifacts_ds03):
    artifacts_ds03.save(tmp_path / "ds03")
    root = tmp_path / "ds03"
    assert (root / "trace.getevent").exists()
    assert (root / "meta.json").exists()
    assert (root / "annotations" / "meta.json").exists()
    assert (root / "annotations" / "images.npz").exists()


def test_load_uses_saved_classification_row(tmp_path, artifacts_ds03, monkeypatch):
    """Loading must read the classification from meta.json, not re-run the
    full gesture decode the recording already paid for."""
    import repro.harness.experiment as experiment

    artifacts_ds03.save(tmp_path / "ds03")

    def boom(*_args, **_kwargs):
        raise AssertionError("classification was recomputed on load")

    monkeypatch.setattr(experiment, "classify_workload", boom)
    loaded = WorkloadArtifacts.load(tmp_path / "ds03")
    assert loaded.classification == artifacts_ds03.classification


def test_load_verify_classification_recomputes_and_accepts(
    tmp_path, artifacts_ds03
):
    artifacts_ds03.save(tmp_path / "ds03")
    loaded = WorkloadArtifacts.load(tmp_path / "ds03", verify_classification=True)
    assert loaded.classification == artifacts_ds03.classification


def test_load_verify_classification_rejects_tampered_row(
    tmp_path, artifacts_ds03
):
    artifacts_ds03.save(tmp_path / "ds03")
    meta_path = tmp_path / "ds03" / "meta.json"
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    meta["classification"]["taps"] += 1
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    # The silent path serves the (tampered) saved row...
    loaded = WorkloadArtifacts.load(tmp_path / "ds03")
    assert loaded.classification.taps == artifacts_ds03.classification.taps + 1
    # ...the opt-in verification path catches it.
    with pytest.raises(WorkloadError):
        WorkloadArtifacts.load(tmp_path / "ds03", verify_classification=True)


def test_load_without_saved_row_falls_back_to_recomputation(
    tmp_path, artifacts_ds03
):
    """Artifacts saved before the row existed still load (and classify)."""
    artifacts_ds03.save(tmp_path / "ds03")
    meta_path = tmp_path / "ds03" / "meta.json"
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    del meta["classification"]
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    loaded = WorkloadArtifacts.load(tmp_path / "ds03")
    assert loaded.classification == artifacts_ds03.classification

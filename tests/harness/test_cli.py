"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Logo Quiz game." in out


def test_classify_command(capsys):
    assert main(["classify", "--datasets", "03"]) == 0
    out = capsys.readouterr().out
    assert "Spurious lags" in out


def test_sweep_command_small(capsys):
    assert main(["sweep", "--dataset", "03", "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 12" in out
    assert "oracle" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_defaults():
    args = build_parser().parse_args(["sweep"])
    assert args.dataset == "02"
    assert args.reps == 5
    assert args.jobs == 1
    assert args.no_cache is False
    assert args.master_seed is None


def test_parser_fleet_flags():
    args = build_parser().parse_args(
        ["study", "--jobs", "8", "--no-cache", "--master-seed", "7",
         "--cache-dir", "/tmp/x"]
    )
    assert args.jobs == 8
    assert args.no_cache is True
    assert args.master_seed == 7
    assert args.cache_dir == "/tmp/x"


def test_sweep_parallel_then_warm_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = ["sweep", "--dataset", "03", "--reps", "1",
            "--jobs", "2", "--cache-dir", cache_dir]
    assert main(argv) == 0
    captured = capsys.readouterr()
    out = captured.out
    # Timing and cache telemetry live on stderr so stdout stays
    # bit-identical across --jobs values and warm re-runs.
    assert "cache: 0 hits, 17 misses" in captured.err
    assert "cache:" not in out
    assert "s wall" not in out

    # Warm re-run: every completed cell is served from the cache and
    # stdout is bit-identical to the cold run.
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "cache: 17 hits, 0 misses" in captured.err
    assert captured.out == out


def test_sweep_verbose_progress_shows_counts(tmp_path, capsys):
    argv = ["sweep", "--dataset", "03", "--reps", "1", "--no-cache",
            "--verbose"]
    assert main(argv) == 0
    err = capsys.readouterr().err
    assert "(config 1/17, rep 1/1)" in err
    assert "17/17 runs" in err

"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Logo Quiz game." in out


def test_classify_command(capsys):
    assert main(["classify", "--datasets", "03"]) == 0
    out = capsys.readouterr().out
    assert "Spurious lags" in out


def test_sweep_command_small(capsys):
    assert main(["sweep", "--dataset", "03", "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 12" in out
    assert "oracle" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_defaults():
    args = build_parser().parse_args(["sweep"])
    assert args.dataset == "02"
    assert args.reps == 5

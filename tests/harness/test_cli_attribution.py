"""CLI tests: attribute, trace-diff, and the ``--progress-jsonl -`` sentinel."""

import json

from repro.harness.cli import build_parser, main
from repro.obs.validate import validate_file


def test_attribute_command_deterministic_across_jobs(tmp_path, capsys):
    """attribute prints the cause report on stdout, annotates the trace,
    and the stdout report is byte-identical across ``--jobs`` values."""
    trace_1 = tmp_path / "annotated_1.json"
    assert main(["attribute", "03", "--config", "conservative",
                 "-o", str(trace_1), "--jobs", "1"]) == 0
    captured = capsys.readouterr()
    out_jobs_1 = captured.out
    assert "# attribution 03 [conservative]:" in out_jobs_1
    assert "dominant cause:" in out_jobs_1
    assert "cause" in out_jobs_1  # the taxonomy table header
    # The annotated trace validates, including its cause spans.
    assert "annotated trace" in captured.err
    assert validate_file(trace_1) == []
    document = json.loads(trace_1.read_text(encoding="utf-8"))
    assert any(
        event.get("name", "").startswith("cause:")
        for event in document["traceEvents"]
    )

    trace_2 = tmp_path / "annotated_2.json"
    assert main(["attribute", "03", "--config", "conservative",
                 "-o", str(trace_2), "--jobs", "2"]) == 0
    assert capsys.readouterr().out == out_jobs_1
    assert trace_2.read_text() == trace_1.read_text()


def test_attribute_parser_defaults():
    args = build_parser().parse_args(["attribute", "03"])
    assert args.config == "interactive"
    assert args.output is None
    assert args.jobs == 1


def _document(lag_duration):
    return {
        "traceEvents": [
            {"name": "lag:tap:0", "ph": "X", "ts": 100,
             "dur": lag_duration, "pid": 1, "tid": 5},
            {"name": "cause:at_speed", "ph": "X", "ts": 100,
             "dur": lag_duration, "pid": 1, "tid": 6,
             "args": {"lag": "tap:0"}},
        ]
    }


def test_trace_diff_command_exit_codes(tmp_path, capsys):
    same_a = tmp_path / "a.json"
    same_b = tmp_path / "b.json"
    other = tmp_path / "c.json"
    same_a.write_text(json.dumps(_document(300)), encoding="utf-8")
    same_b.write_text(json.dumps(_document(300)), encoding="utf-8")
    other.write_text(json.dumps(_document(500)), encoding="utf-8")

    assert main(["trace-diff", str(same_a), str(same_b)]) == 0
    assert "no causally-diverging windows" in capsys.readouterr().out

    assert main(["trace-diff", str(same_a), str(other)]) == 1
    out = capsys.readouterr().out
    assert "1 causally-diverging window(s)" in out
    assert "first divergence: 'tap:0'" in out

    # Unreadable input surfaces as the CLI's one-line ReproError.
    assert main(["trace-diff", str(same_a), str(tmp_path / "nope.json")]) == 2
    assert "repro-qoe: error:" in capsys.readouterr().err


def test_progress_jsonl_dash_streams_to_stderr(capsys):
    argv = ["sweep", "--dataset", "03", "--reps", "1", "--no-cache",
            "--progress-jsonl", "-"]
    assert main(argv) == 0
    captured = capsys.readouterr()
    events = [
        json.loads(line)
        for line in captured.err.splitlines()
        if line.startswith("{")
    ]
    assert any(event["event"] == "grid_bound" for event in events)
    assert any(event["event"] == "fleet_summary" for event in events)
    # stdout carries only the deterministic study output.
    assert "grid_bound" not in captured.out
    assert "Fig. 12" in captured.out

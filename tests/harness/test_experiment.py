"""Tests for workload recording and replay runs."""

import pytest

from repro.harness.experiment import RECORDING_FREQ_KHZ, replay_run


def test_recording_produces_consistent_artifacts(artifacts_ds03):
    artifacts = artifacts_ds03
    assert artifacts.name == "03"
    assert artifacts.input_count == len(artifacts.database.gestures)
    assert artifacts.database.lag_count > 20
    assert artifacts.duration_us >= artifacts.spec.duration_us
    assert artifacts.trace.touch_down_times()[0] > 0


def test_recording_is_reproducible(artifacts_ds03):
    from repro.harness.experiment import record_workload
    from repro.workloads import dataset

    again = record_workload(dataset("03"))
    assert again.trace.dumps() == artifacts_ds03.trace.dumps()
    assert again.database.lag_count == artifacts_ds03.database.lag_count


def test_classification_matches_database(artifacts_ds03):
    classification = artifacts_ds03.classification
    assert classification.actual_lags == artifacts_ds03.database.lag_count
    assert (
        classification.total_inputs
        == classification.actual_lags + classification.spurious_lags
    )


def test_recording_frequency_is_the_minimum():
    assert RECORDING_FREQ_KHZ == 300_000


def test_replay_produces_full_lag_profile(artifacts_ds03):
    result = replay_run(artifacts_ds03, "fixed:960000")
    assert len(result.lag_profile) == artifacts_ds03.database.lag_count
    assert result.energy_j > result.dynamic_energy_j > 0
    assert result.busy_us > 0
    assert result.busy_timeline.total_busy_us == result.busy_us


def test_replay_at_slowest_matches_recording_lags(artifacts_ds03):
    """Replaying at the recording frequency reproduces the recorded lag
    timings (same speed, same workload)."""
    result = replay_run(artifacts_ds03, f"fixed:{RECORDING_FREQ_KHZ}")
    assert len(result.lag_profile) == artifacts_ds03.database.lag_count
    # Lags must all have been serviced within the run window.
    assert max(result.lag_profile.durations_us()) < artifacts_ds03.duration_us


def test_replay_faster_frequency_shortens_lags(artifacts_ds03):
    slow = replay_run(artifacts_ds03, "fixed:300000")
    fast = replay_run(artifacts_ds03, "fixed:2150400")
    slower_count = sum(
        1
        for _label, s, f in zip(
            [lag.label for lag in slow.lag_profile.lags],
            slow.lag_profile.durations_us(),
            fast.lag_profile.durations_us(),
        )
        if s >= f
    )
    assert slower_count >= len(slow.lag_profile) * 9 // 10


def test_replay_reps_differ_only_by_noise(artifacts_ds03):
    rep0 = replay_run(artifacts_ds03, "ondemand", rep=0)
    rep1 = replay_run(artifacts_ds03, "ondemand", rep=1)
    assert len(rep0.lag_profile) == len(rep1.lag_profile)
    assert rep0.energy_j != rep1.energy_j  # background noise differs


def test_replay_same_rep_is_deterministic(artifacts_ds03):
    a = replay_run(artifacts_ds03, "ondemand", rep=0)
    b = replay_run(artifacts_ds03, "ondemand", rep=0)
    assert a.energy_j == b.energy_j
    assert a.lag_profile.durations_us() == b.lag_profile.durations_us()
    assert a.transitions == b.transitions


def test_governor_tunables_passthrough(artifacts_ds03):
    hot = replay_run(
        artifacts_ds03, "interactive", hispeed_freq_khz=2_150_400
    )
    cold = replay_run(
        artifacts_ds03, "interactive", hispeed_freq_khz=652_800
    )
    assert hot.dynamic_energy_j > cold.dynamic_energy_j

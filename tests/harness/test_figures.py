"""Tests for figure/table regeneration."""

import pytest

from repro.harness import figures
from repro.harness.sweep import run_sweep


@pytest.fixture(scope="module")
def sweep(artifacts_ds03):
    return run_sweep(artifacts_ds03, reps=1)


def test_table1_lists_five_datasets():
    rows = figures.table1_rows()
    assert len(rows) == 5
    assert rows[1][1] == "Logo Quiz game."


def test_format_table_alignment():
    text = figures.format_table(["a", "bb"], [["1", "2"], ["33", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)


def test_fig3_snapshot_brackets_the_lag(sweep):
    snapshot = figures.fig3_series(sweep)
    assert snapshot.window_start_s <= snapshot.input_time_s
    assert snapshot.input_time_s < snapshot.serviced_time_s
    assert snapshot.serviced_time_s <= snapshot.window_end_s
    assert snapshot.governor_series and snapshot.oracle_series
    rendered = figures.render_fig3(snapshot)
    assert "A: input received" in rendered


def test_fig5_lines_match_getevent_format(artifacts_ds03):
    lines = figures.fig5_lines(artifacts_ds03)
    assert lines
    assert all(line.startswith("/dev/input/event1: ") for line in lines)


def test_fig10_rows_include_average(artifacts_ds03):
    rows = figures.fig10_rows([artifacts_ds03, artifacts_ds03])
    assert rows[-1][0] == "average"


def test_fig11_rows_have_all_configs(sweep):
    rows = figures.fig11_rows(sweep)
    assert "0.30 GHz" in rows and "ondemand" in rows
    assert rows["0.30 GHz"].mean_ms > rows["2.15 GHz"].mean_ms


def test_fig12_rows_end_with_oracle(sweep):
    rows = figures.fig12_rows(sweep)
    assert rows[-1][0] == "oracle"
    assert rows[-1][-1] == "1.00"


def test_fig13_rows_kinds(sweep):
    kinds = {kind for _l, kind, _e, _i in figures.fig13_rows(sweep)}
    assert kinds == {"fixed", "governor", "oracle"}


def test_fig14_summary_includes_averages(sweep):
    energy_rows, irritation_rows = figures.fig14_rows({"03": sweep})
    assert [row[0] for row in energy_rows] == [
        "conservative",
        "interactive",
        "ondemand",
    ]
    assert len(energy_rows[0]) == 3  # governor, ds03, avg
    assert len(irritation_rows) == 3


def test_headline_savings_positive(sweep):
    savings = figures.headline_savings({"03": sweep})
    assert savings["vs_max_frequency_max"] > 0.15
    assert savings["vs_best_governor_max"] > 0.0


def test_collapse_change_string():
    assert figures.collapse_change_string("0100000") == "0 1 0{x5}"
    assert figures.collapse_change_string("") == ""
    assert figures.collapse_change_string("111") == "111"

"""Tests for the sweep orchestration and oracle composition."""

import pytest

from repro.core.errors import ReproError
from repro.harness.sweep import (
    SweepResult,
    config_label,
    fixed_configs,
    governor_configs,
    run_sweep,
    sweep_configs,
)


@pytest.fixture(scope="module")
def small_sweep(artifacts_ds03):
    return run_sweep(artifacts_ds03, reps=1)


def test_seventeen_configurations():
    configs = sweep_configs()
    assert len(configs) == 17
    assert len(fixed_configs()) == 14
    assert governor_configs() == ["conservative", "interactive", "ondemand"]


def test_config_labels():
    assert config_label("fixed:960000") == "0.96 GHz"
    assert config_label("ondemand") == "ondemand"


def test_sweep_runs_every_config(small_sweep):
    assert set(small_sweep.configs()) == set(sweep_configs())
    for config in small_sweep.configs():
        assert len(small_sweep.runs[config]) == 1


def test_oracle_energy_not_above_max_frequency(small_sweep):
    max_energy = small_sweep.mean_energy_j("fixed:2150400")
    assert small_sweep.oracle.energy_j < max_energy


def test_oracle_base_is_efficient_opp(small_sweep):
    assert small_sweep.oracle.base_khz == 960_000


def test_fixed_energy_curve_is_u_shaped(small_sweep):
    energies = [
        small_sweep.mean_energy_j(config) for config in fixed_configs()
    ]
    best = energies.index(min(energies))
    assert 0 < best < len(energies) - 1


def test_irritation_decreases_with_frequency(small_sweep):
    irritations = [
        small_sweep.mean_irritation_s(config) for config in fixed_configs()
    ]
    # Allow small non-monotonicities from frame quantisation.
    assert irritations[0] > irritations[-1]
    assert irritations[-1] == pytest.approx(0.0, abs=0.2)


def test_conservative_most_irritating_governor(small_sweep):
    conservative = small_sweep.mean_irritation_s("conservative")
    assert conservative > small_sweep.mean_irritation_s("interactive")
    assert conservative > small_sweep.mean_irritation_s("ondemand")


def test_conservative_cheapest_governor(small_sweep):
    conservative = small_sweep.mean_energy_j("conservative")
    assert conservative < small_sweep.mean_energy_j("interactive")
    assert conservative < small_sweep.mean_energy_j("ondemand")


def test_pooled_lag_durations(small_sweep):
    durations = small_sweep.pooled_lag_durations_ms("ondemand")
    assert len(durations) == len(small_sweep.runs["ondemand"][0].lag_profile)


def test_unknown_config_rejected(small_sweep):
    with pytest.raises(ReproError):
        small_sweep.mean_energy_j("warp-drive")


def test_normalisation_to_oracle(small_sweep):
    ratio = small_sweep.energy_normalised_to_oracle("fixed:960000")
    assert ratio == pytest.approx(
        small_sweep.mean_energy_j("fixed:960000") / small_sweep.oracle.energy_j
    )


class TestConfigParsing:
    """Edge cases of config_label / parse_sweep_configs (user input)."""

    def test_parameterized_label_is_canonical(self):
        assert (
            config_label("qoe_aware:settle=40_000,boost=1_036_800")
            == "qoe_aware:boost=1036800,settle=40000"
        )

    def test_label_rejects_out_of_table_frequency(self):
        with pytest.raises(ReproError, match="999"):
            config_label("fixed:999")

    def test_label_rejects_malformed_strings(self):
        with pytest.raises(ReproError):
            config_label("fixed:fast")
        with pytest.raises(ReproError):
            config_label("qoe_aware:boost")

    def test_parse_sweep_configs_canonicalises_and_dedupes(self):
        from repro.harness.sweep import parse_sweep_configs

        out = parse_sweep_configs(
            [
                "qoe_aware:settle=40_000,boost=1_036_800",
                "qoe_aware:boost=1036800,settle=40000",
                "fixed:960_000",
            ]
        )
        assert out == [
            "qoe_aware:boost=1036800,settle=40000",
            "fixed:960000",
        ]

    def test_parse_sweep_configs_unknown_governor(self):
        from repro.harness.sweep import parse_sweep_configs

        with pytest.raises(ReproError, match="unknown governor 'warp'"):
            parse_sweep_configs(["warp:speed=9"])

    def test_parse_sweep_configs_unknown_tunable(self):
        from repro.harness.sweep import parse_sweep_configs

        with pytest.raises(ReproError, match="no tunable 'bogus'"):
            parse_sweep_configs(["qoe_aware:bogus=1"])

    def test_parse_sweep_configs_malformed_pair(self):
        from repro.harness.sweep import parse_sweep_configs

        with pytest.raises(ReproError, match="key=value"):
            parse_sweep_configs(["ondemand:up_threshold"])

    def test_parse_sweep_configs_out_of_table_fixed(self):
        from repro.harness.sweep import parse_sweep_configs

        with pytest.raises(ReproError, match="not an operating point"):
            parse_sweep_configs(["fixed:123456"])

    def test_parse_sweep_configs_out_of_table_frequency_param(self):
        from repro.harness.sweep import parse_sweep_configs

        # Off-table boost/hispeed values would silently clamp at runtime,
        # mislabelling the study data; they must be rejected pre-flight.
        with pytest.raises(ReproError, match="boost=103680"):
            parse_sweep_configs(["qoe_aware:boost=103680"])
        with pytest.raises(ReproError, match="hispeed=999"):
            parse_sweep_configs(["interactive:hispeed=999"])

    def test_parse_sweep_configs_rejects_out_of_range_values(self):
        from repro.harness.sweep import parse_sweep_configs

        with pytest.raises(ReproError, match="up_threshold"):
            parse_sweep_configs(["ondemand:up_threshold=0"])
        with pytest.raises(ReproError, match="timer period"):
            parse_sweep_configs(["qoe_aware:timer=-5"])
        with pytest.raises(ReproError, match="down_threshold"):
            parse_sweep_configs(["conservative:up_threshold=10"])

    def test_run_sweep_rejects_bad_config_before_replaying(self, artifacts_ds03):
        with pytest.raises(ReproError, match="no tunable"):
            run_sweep(
                artifacts_ds03, reps=1, configs=["qoe_aware:warp=1"]
            )

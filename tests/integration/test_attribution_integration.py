"""End-to-end attribution: exhaustive causes, mode-invariant diffs.

The acceptance contract:

* every golden-suite scenario's per-cause decomposition is exhaustive —
  per-cause irritation sums to the run's total irritation and the
  ``unattributed`` share stays within 5%;
* a fastpath trace diffed against its ``REPRO_FASTPATH=0`` twin reports
  zero causally-diverging windows (attribution consumes only
  mode-invariant signals);
* ``REPRO_TRACE=1`` harvests the attribution summary into the record's
  ``obs`` section without perturbing the record itself.
"""

import pytest

from repro import obs
from repro.harness.experiment import record_workload, replay_run
from repro.obs.attribution import (
    annotate_document,
    attribute_record,
    diff_documents,
)
from repro.workloads.datasets import dataset

# Dataset 03 is the irritation-rich golden workload (69 lags, nonzero
# penalty under every stock governor); the synthesized scenarios are the
# golden suite's persona grid.
DATASET = "03"
CONFIGS = ("conservative", "ondemand", "qoe_aware", "fixed:300000")

SCENARIOS = [
    "persona=gamer,seed=11,duration=45s",
    "persona=reader,seed=11,duration=45s",
    "persona=mixed,seed=11,duration=45s",
]


@pytest.fixture(scope="module")
def artifacts():
    return record_workload(dataset(DATASET))


def _traced_replay(artifacts, config):
    session = obs.ObsSession.for_tracing()
    with obs.observed(session):
        record = replay_run(artifacts, config)
    return record, session


def _assert_exhaustive(record, attribution):
    run_total = sum(
        max(0, lag.duration_us - lag.threshold_us) for lag in record.lags
    )
    per_cause = attribution.per_cause_penalty_us()
    assert sum(per_cause.values()) == run_total
    assert attribution.total_penalty_us == run_total
    assert attribution.unattributed_penalty_us <= run_total * 0.05
    for window in attribution.windows:
        covered = sum(end - start for start, end, _ in window.segments)
        assert covered == window.duration_us


@pytest.mark.parametrize("config", CONFIGS)
def test_decomposition_exhaustive_for_every_config(artifacts, config):
    record, session = _traced_replay(artifacts, config)
    attribution = attribute_record(record, boosts=session.decisions.boosts)
    _assert_exhaustive(record, attribution)
    if attribution.total_penalty_us:
        assert attribution.dominant_cause is not None


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_decomposition_exhaustive_for_golden_scenarios(scenario):
    artifacts = record_workload(dataset(scenario))
    record, session = _traced_replay(artifacts, "conservative")
    attribution = attribute_record(record, boosts=session.decisions.boosts)
    _assert_exhaustive(record, attribution)


def test_fastpath_and_slowpath_traces_never_causally_diverge(
    artifacts, monkeypatch
):
    """The tentpole invariant: trace-diff across fastpath modes is clean."""
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    fast_record, fast_session = _traced_replay(artifacts, "conservative")
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    slow_record, slow_session = _traced_replay(artifacts, "conservative")

    fast_attr = attribute_record(
        fast_record, boosts=fast_session.decisions.boosts
    )
    slow_attr = attribute_record(
        slow_record, boosts=slow_session.decisions.boosts
    )
    assert fast_attr.summary() == slow_attr.summary()
    assert fast_attr.windows == slow_attr.windows

    diff = diff_documents(
        annotate_document(
            fast_session.tracer.to_chrome_trace("fast"), fast_attr
        ),
        annotate_document(
            slow_session.tracer.to_chrome_trace("slow"), slow_attr
        ),
    )
    assert len(diff.aligned) == len(fast_record.lags)
    assert diff.only_a == () and diff.only_b == ()
    assert diff.diverging == ()


def test_trace_env_harvests_attribution_summary(artifacts, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    record = replay_run(artifacts, "conservative")
    summary = record.obs["attribution"]
    run_total = sum(
        max(0, lag.duration_us - lag.threshold_us) for lag in record.lags
    )
    assert summary["total_penalty_us"] == run_total
    assert sum(summary["per_cause_penalty_us"].values()) == run_total
    assert summary["windows"] == len(record.lags)
    assert summary["unattributed_penalty_us"] <= run_total * 0.05

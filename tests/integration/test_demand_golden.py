"""Demand-pass-vs-full-replay equivalence (REPRO_DEMAND).

The kernel-only evaluation pass (demand trace → DemandProgram →
demand_replay_run) must produce bit-identical RunRecords to a full
replay, across personas, device profiles, the fleet engine at any job
count, and warm demand-store re-runs — with zero fallbacks on healthy
workloads.  The compiled flat-array walk (REPRO_DEMAND_COMPILE, default
on) carries the same contract against the node-object interpreter: the
``=0`` kill switch must change nothing but wall time.
"""

import pytest

from repro.demand import DemandProgram, capture_demand, demand_enabled, demand_replay_run
from repro.fleet.cache import ResultCache
from repro.fleet.engine import FleetEngine
from repro.fleet.spec import RunSpec
from repro.harness.experiment import record_workload, replay_run
from repro.workloads.datasets import dataset

# Two personas and one alternate device profile: covers the persona
# plumbing, the profile plumbing and the stock path end to end.
SCENARIOS = (
    "persona=gamer,seed=11,duration=45s",
    "persona=creator,seed=2,duration=45s",
    "persona=messenger,seed=3,duration=45s,profile=quad_ls",
)
# A sampling governor, the proposed governor and a pinned OPP: the three
# cpufreq control styles a sweep exercises.
CONFIGS = ("ondemand", "qoe_aware", "fixed:652800")


@pytest.fixture(scope="module")
def scenario_artifacts():
    return {name: record_workload(dataset(name)) for name in SCENARIOS}


@pytest.fixture(scope="module")
def scenario_programs(scenario_artifacts):
    return {
        name: DemandProgram(capture_demand(artifacts))
        for name, artifacts in scenario_artifacts.items()
    }


def _specs(artifacts):
    return [
        RunSpec(
            dataset=artifacts.name,
            config=config,
            rep=0,
            master_seed=artifacts.recording_master_seed,
        )
        for config in CONFIGS
    ]


def test_demand_is_the_default(monkeypatch):
    monkeypatch.delenv("REPRO_DEMAND", raising=False)
    assert demand_enabled()


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_demand_pass_is_bit_identical(
    scenario_artifacts, scenario_programs, scenario
):
    """Per persona/profile/config: the kernel-only pass replays identically."""
    artifacts = scenario_artifacts[scenario]
    program = scenario_programs[scenario]
    for config in CONFIGS:
        demand = demand_replay_run(artifacts, program, config)
        full = replay_run(artifacts, config)
        assert demand.to_json_dict() == full.to_json_dict(), (scenario, config)


def test_fleet_jobs2_demand_matches_full_replay(scenario_artifacts, monkeypatch):
    """REPRO_DEMAND=1 at jobs=2 equals direct full replays, no fallbacks."""
    monkeypatch.setenv("REPRO_DEMAND", "1")
    artifacts = scenario_artifacts[SCENARIOS[0]]
    specs = _specs(artifacts)
    engine = FleetEngine(jobs=2)
    fleet_results = engine.run(artifacts, specs)
    stats = engine.last_stats
    assert stats.demand_cells == len(specs)
    assert stats.full_cells == 0
    assert stats.fallback_cells == 0
    assert stats.fallback_reasons == {}
    assert stats.demand_trace_source == "captured"
    for spec, fleet_result in zip(specs, fleet_results):
        direct = replay_run(
            artifacts, spec.config, rep=0,
            master_seed=artifacts.recording_master_seed,
        )
        assert fleet_result == direct


def test_kill_switch_runs_full_replays(scenario_artifacts, monkeypatch):
    """REPRO_DEMAND=0: no capture, every cell a full replay, same records."""
    artifacts = scenario_artifacts[SCENARIOS[1]]
    specs = _specs(artifacts)
    monkeypatch.setenv("REPRO_DEMAND", "1")
    on = FleetEngine(jobs=1)
    demand_results = on.run(artifacts, specs)
    monkeypatch.setenv("REPRO_DEMAND", "0")
    off = FleetEngine(jobs=1)
    full_results = off.run(artifacts, specs)
    assert demand_results == full_results
    assert off.last_stats.demand_trace_source is None
    assert off.last_stats.demand_cells == 0
    assert off.last_stats.full_cells == len(specs)
    assert on.last_stats.demand_cells == len(specs)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_compiled_walk_is_bit_identical_to_interpreter(
    scenario_artifacts, scenario_programs, scenario, monkeypatch
):
    """Per persona/profile/config: REPRO_DEMAND_COMPILE=0 changes nothing."""
    artifacts = scenario_artifacts[scenario]
    program = scenario_programs[scenario]
    for config in CONFIGS:
        monkeypatch.setenv("REPRO_DEMAND_COMPILE", "1")
        compiled = demand_replay_run(artifacts, program, config)
        monkeypatch.setenv("REPRO_DEMAND_COMPILE", "0")
        interpreted = demand_replay_run(artifacts, program, config)
        assert compiled.to_json_dict() == interpreted.to_json_dict(), (
            scenario,
            config,
        )


def test_fleet_jobs2_compile_kill_switch_is_bit_identical(
    scenario_artifacts, monkeypatch
):
    """The fleet at jobs=2 emits the same records either way, and the
    compiled-cell accounting tracks the flag."""
    monkeypatch.setenv("REPRO_DEMAND", "1")
    artifacts = scenario_artifacts[SCENARIOS[0]]
    specs = _specs(artifacts)
    monkeypatch.setenv("REPRO_DEMAND_COMPILE", "1")
    on = FleetEngine(jobs=2)
    compiled_results = on.run(artifacts, specs)
    assert on.last_stats.demand_cells == len(specs)
    assert on.last_stats.compiled_cells == len(specs)
    monkeypatch.setenv("REPRO_DEMAND_COMPILE", "0")
    off = FleetEngine(jobs=2)
    interpreted_results = off.run(artifacts, specs)
    assert off.last_stats.demand_cells == len(specs)
    assert off.last_stats.compiled_cells == 0
    assert compiled_results == interpreted_results


def test_warm_demand_store_rerun_executes_zero_full_replays(
    tmp_path, scenario_artifacts, monkeypatch
):
    """A re-run with a warm demand store loads the trace (no re-capture)
    and evaluates every cell kernel-only."""
    monkeypatch.setenv("REPRO_DEMAND", "1")
    artifacts = scenario_artifacts[SCENARIOS[2]]
    specs = _specs(artifacts)
    cache = ResultCache(tmp_path)
    cold_engine = FleetEngine(jobs=1, cache=cache)
    cold = cold_engine.run(artifacts, specs)
    assert cold_engine.last_stats.demand_trace_source == "captured"
    assert cold_engine.last_stats.demand_cells == len(specs)

    # Invalidate the result records but keep the demand store: the rerun
    # must reload the trace and execute only kernel-only passes.
    for shard in tmp_path.iterdir():
        if shard.is_dir() and shard.name != "demand":
            for entry in shard.iterdir():
                entry.unlink()
    warm_engine = FleetEngine(jobs=2, cache=ResultCache(tmp_path))
    warm = warm_engine.run(artifacts, specs)
    stats = warm_engine.last_stats
    assert stats.demand_trace_source == "cache"
    assert stats.demand_cells == len(specs)
    assert stats.full_cells == 0
    assert stats.fallback_cells == 0
    assert warm == cold


def test_fully_cached_rerun_skips_capture_entirely(
    tmp_path, scenario_artifacts, monkeypatch
):
    """All cells served from the result cache: no trace is even resolved."""
    monkeypatch.setenv("REPRO_DEMAND", "1")
    artifacts = scenario_artifacts[SCENARIOS[0]]
    specs = _specs(artifacts)
    cache = ResultCache(tmp_path)
    FleetEngine(jobs=1, cache=cache).run(artifacts, specs)
    rerun = FleetEngine(jobs=1, cache=ResultCache(tmp_path))
    rerun.run(artifacts, specs)
    assert rerun.last_stats.cache_hits == len(specs)
    assert rerun.last_stats.executed == 0
    assert rerun.last_stats.demand_trace_source is None

"""Determinism guarantees across the whole stack.

The paper's method depends on workloads being "repeatable without major
deviations"; in the simulator, repeatability is exact by construction and
these tests pin that down.
"""

from repro.harness.experiment import record_workload, replay_run
from repro.workloads import dataset


def test_recording_bitwise_reproducible():
    a = record_workload(dataset("05"))
    b = record_workload(dataset("05"))
    assert a.trace.dumps() == b.trace.dumps()
    assert a.duration_us == b.duration_us
    assert [ann.label for ann in a.database.annotations] == [
        ann.label for ann in b.database.annotations
    ]
    assert [ann.occurrence for ann in a.database.annotations] == [
        ann.occurrence for ann in b.database.annotations
    ]


def test_different_master_seed_changes_the_session():
    a = record_workload(dataset("05"), master_seed=1)
    b = record_workload(dataset("05"), master_seed=2)
    assert a.trace.dumps() != b.trace.dumps()


def test_fixed_frequency_replays_are_rep_invariant(artifacts_ds03):
    """With a pinned frequency the governor ignores load, so background
    noise cannot change lag timings — only reps under load-driven
    governors may vary."""
    rep0 = replay_run(artifacts_ds03, "fixed:960000", rep=0)
    rep1 = replay_run(artifacts_ds03, "fixed:960000", rep=1)
    assert (
        rep0.lag_profile.durations_us() == rep1.lag_profile.durations_us()
    )


def test_governor_replays_vary_across_reps_but_mildly(artifacts_ds03):
    rep0 = replay_run(artifacts_ds03, "conservative", rep=0)
    rep1 = replay_run(artifacts_ds03, "conservative", rep=1)
    a = rep0.irritation_seconds()
    b = rep1.irritation_seconds()
    assert abs(a - b) < max(a, b) * 0.8 + 1.0

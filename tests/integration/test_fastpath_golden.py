"""Golden-equivalence tests for the simulator fast path.

``golden_seed_reference.json`` holds digests recorded from the *seed*
implementation (pre-fast-path: dataclass heap events, per-expiry timer
allocation, linear frequency_at, no tick elision).  The fast path must
reproduce the study output — energy, irritation, frame journal, lag
profile, transition trace — bit for bit:

* against the committed seed reference,
* with the tick-elision fast path disabled (``REPRO_FASTPATH=0``),
* through the fleet engine at any ``--jobs`` count.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro import obs
from repro.capture import FrameDigestTap
from repro.fleet.engine import FleetEngine
from repro.fleet.spec import RunSpec
from repro.harness.experiment import record_workload, replay_run
from repro.obs.recorder import divergence_report, first_divergence
from repro.workloads.datasets import dataset

REFERENCE_PATH = Path(__file__).parent / "golden_seed_reference.json"
REFERENCE = json.loads(REFERENCE_PATH.read_text(encoding="utf-8"))

GOVERNOR_CELLS = ["interactive", "ondemand", "conservative", "qoe_aware"]


@pytest.fixture(scope="module")
def artifacts():
    return record_workload(dataset(REFERENCE["dataset"]))


def _transitions_digest(transitions):
    digest = hashlib.blake2b(digest_size=16)
    for timestamp, freq_khz in transitions:
        digest.update(timestamp.to_bytes(8, "big"))
        digest.update(freq_khz.to_bytes(8, "big"))
    return digest.hexdigest()


def _lag_digest(profile):
    digest = hashlib.blake2b(digest_size=16)
    for lag in profile.lags:
        digest.update(
            repr(
                (
                    lag.lag_index,
                    lag.gesture_index,
                    lag.label,
                    lag.category,
                    lag.begin_time_us,
                    lag.end_frame,
                    lag.duration_us,
                    lag.threshold_us,
                )
            ).encode()
        )
    return digest.hexdigest()


def _cell_digests(result, frame_tap=None):
    digests = {
        "energy_j": repr(result.energy_j),
        "dynamic_energy_j": repr(result.dynamic_energy_j),
        "busy_us": result.busy_us,
        "irritation_s": repr(result.irritation_seconds()),
        "lag_count": len(result.lag_profile.lags),
        "transitions_digest": _transitions_digest(result.transitions),
        "n_transitions": len(result.transitions),
        "lag_digest": _lag_digest(result.lag_profile),
    }
    if frame_tap is not None:
        digests["frame_digest"] = frame_tap.hexdigest()
    return digests


@pytest.mark.parametrize("config", sorted(REFERENCE["cells"]))
def test_fast_path_matches_seed_reference(artifacts, config):
    """Every study cell reproduces the seed implementation bit for bit."""
    tap = FrameDigestTap()
    result = replay_run(artifacts, config, frame_tap=tap)
    got = _cell_digests(result, tap)
    want = REFERENCE["cells"][config]
    assert got == want


def _recorded_replay(artifacts, config):
    """Replay under a flight-recorder session; return (digests, recorder)."""
    session = obs.ObsSession.for_run()
    with obs.observed(session):
        result = replay_run(artifacts, config)
    return _cell_digests(result), session.recorder


def test_tick_elision_off_is_equivalent(artifacts, monkeypatch):
    """REPRO_FASTPATH=0 (no parking) produces identical study output.

    Both replays run under a flight recorder: a digest mismatch reports
    the first diverging kernel event instead of just two hex strings.
    """
    config = "interactive"
    # Force the fast path ON explicitly so the A/B stays meaningful even
    # when the whole test run was launched with REPRO_FASTPATH=0.
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    fast, fast_recorder = _recorded_replay(artifacts, config)
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    slow, slow_recorder = _recorded_replay(artifacts, config)
    assert fast == slow, divergence_report(
        fast_recorder, slow_recorder, "fastpath", "slowpath"
    )
    # The recorders themselves must agree event for event — a stronger
    # property than the end-of-run digests.
    assert first_divergence(fast_recorder, slow_recorder) is None


def test_forced_divergence_names_first_diverging_event(artifacts):
    """Two runs that genuinely differ yield a report naming the first
    diverging kernel event — the flight recorder's reason to exist."""
    _, recorder_a = _recorded_replay(artifacts, "interactive")
    _, recorder_b = _recorded_replay(artifacts, "ondemand")
    pair = first_divergence(recorder_a, recorder_b)
    assert pair is not None
    report = divergence_report(recorder_a, recorder_b, "interactive", "ondemand")
    assert "FIRST DIVERGING EVENT" in report
    event_a, event_b = pair
    described = [e.describe() for e in (event_a, event_b) if e is not None]
    assert any(text in report for text in described)


def test_fleet_jobs_match_direct_replay(artifacts):
    """FleetEngine at jobs=2 returns the same cells as direct replay."""
    specs = [
        RunSpec(
            dataset=artifacts.name, config=config, rep=0, master_seed=2014
        )
        for config in ("interactive", "fixed:960000")
    ]
    fleet_results = FleetEngine(jobs=2).run(artifacts, specs)
    for spec, fleet_result in zip(specs, fleet_results):
        direct = replay_run(artifacts, spec.config, rep=0, master_seed=2014)
        assert _cell_digests(fleet_result) == _cell_digests(direct)
        assert _cell_digests(direct) == {
            key: value
            for key, value in REFERENCE["cells"][spec.config].items()
            if key != "frame_digest"
        }


def test_governor_cells_present_in_reference():
    """The committed reference covers every governor the study sweeps."""
    for config in GOVERNOR_CELLS:
        assert config in REFERENCE["cells"]


# --- synthesized scenarios ----------------------------------------------------------
#
# One short scenario per persona, replayed under the proposed governor
# and a stock one.  There is no committed reference for scenarios (the
# grid is open-ended); the golden property is internal equivalence:
# digests identical with the fast path disabled and through the fleet
# engine at jobs=2.

SCENARIO_GOVERNORS = ("qoe_aware", "ondemand")


def _scenario_names():
    from repro.scenarios.personas import persona_names

    names = [
        f"persona={name},seed=11,duration=45s" for name in persona_names()
    ]
    # One persona also runs on an alternate device profile so the
    # profile plumbing is covered end to end.
    names.append("persona=gamer,seed=11,duration=45s,profile=quad_ls")
    return names


@pytest.fixture(scope="module")
def scenario_artifacts():
    from repro.workloads.datasets import dataset as resolve

    return {name: record_workload(resolve(name)) for name in _scenario_names()}


@pytest.mark.parametrize("scenario", _scenario_names())
def test_scenario_digests_match_with_fastpath_off(
    scenario_artifacts, scenario, monkeypatch
):
    """Per persona: qoe_aware + ondemand digests survive REPRO_FASTPATH=0."""
    artifacts = scenario_artifacts[scenario]
    for config in SCENARIO_GOVERNORS:
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        fast_tap = FrameDigestTap()
        fast = _cell_digests(
            replay_run(artifacts, config, frame_tap=fast_tap), fast_tap
        )
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        slow_tap = FrameDigestTap()
        slow = _cell_digests(
            replay_run(artifacts, config, frame_tap=slow_tap), slow_tap
        )
        assert fast == slow, (scenario, config)


@pytest.mark.parametrize("scenario", _scenario_names()[:3])
def test_scenario_fleet_jobs_match_direct_replay(scenario_artifacts, scenario):
    """Scenario cells are bit-identical through the fleet at jobs=2."""
    artifacts = scenario_artifacts[scenario]
    specs = [
        RunSpec(
            dataset=artifacts.name,
            config=config,
            rep=0,
            master_seed=artifacts.recording_master_seed,
        )
        for config in SCENARIO_GOVERNORS
    ]
    fleet_results = FleetEngine(jobs=2).run(artifacts, specs)
    for spec, fleet_result in zip(specs, fleet_results):
        direct = replay_run(
            artifacts, spec.config, rep=0,
            master_seed=artifacts.recording_master_seed,
        )
        assert _cell_digests(fleet_result) == _cell_digests(direct)

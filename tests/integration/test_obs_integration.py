"""End-to-end observability: opt-in only, invisible when off.

The contract under test:

* ``REPRO_TRACE`` unset — study stdout, run digests and RunRecord JSON
  rows are bit-identical to a process that has never heard of the
  observability subsystem;
* ``REPRO_TRACE=1`` — every RunRecord carries a harvested ``obs``
  section, while the deterministic study output still does not move;
* ``repro-qoe trace`` — exports a Chrome trace-event JSON that the
  structural validator accepts, covering every required event family.
"""

import json

import pytest

from repro.harness.cli import main
from repro.harness.experiment import record_workload, replay_run
from repro.obs.validate import validate_file
from repro.workloads.datasets import dataset

SCENARIO = "persona=gamer,seed=7,duration=45s"


@pytest.fixture(autouse=True)
def _trace_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)


@pytest.fixture(scope="module")
def scenario_artifacts():
    return record_workload(dataset(SCENARIO))


class TestStdoutByteIdentity:
    def test_sweep_stdout_identical_with_trace_enabled(self, capsys, monkeypatch):
        argv = ["sweep", "--dataset", "03", "--reps", "1", "--no-cache"]
        assert main(argv) == 0
        baseline = capsys.readouterr().out

        monkeypatch.setenv("REPRO_TRACE", "1")
        assert main(argv) == 0
        traced = capsys.readouterr().out
        assert traced == baseline

    def test_study_stdout_identical_with_trace_enabled(self, capsys, monkeypatch):
        argv = ["study", "--datasets", "03", "--reps", "1", "--no-cache"]
        assert main(argv) == 0
        baseline = capsys.readouterr().out

        monkeypatch.setenv("REPRO_TRACE", "1")
        assert main(argv) == 0
        traced = capsys.readouterr().out
        assert traced == baseline


class TestRunRecordObsSection:
    def test_trace_off_leaves_obs_absent(self, scenario_artifacts):
        record = replay_run(scenario_artifacts, "interactive")
        assert record.obs is None
        assert "obs" not in record.to_json_dict()

    def test_trace_on_harvests_obs_without_moving_digests(
        self, scenario_artifacts, monkeypatch
    ):
        plain = replay_run(scenario_artifacts, "interactive")
        monkeypatch.setenv("REPRO_TRACE", "1")
        observed = replay_run(scenario_artifacts, "interactive")

        # The simulation itself is untouched by observation.
        assert observed.energy_j == plain.energy_j
        assert observed.busy_us == plain.busy_us
        assert len(observed.lag_profile.lags) == len(plain.lag_profile.lags)
        assert observed.transitions == plain.transitions
        # obs is bookkeeping, not identity: records still compare equal.
        assert observed == plain

        obs_row = observed.obs
        assert obs_row is not None
        counters = obs_row["counters"]
        # transitions[0] is the initial OPP seeded at construction, not
        # an observed change — the counter covers the changes only.
        assert counters["cpufreq.transitions"] == len(plain.transitions) - 1
        assert counters["engine.events_dispatched"] > 0
        assert counters["frames.composed"] > 0
        assert counters["match.lags_matched"] == len(plain.lag_profile.lags)
        assert obs_row["flight_recorder"]["recorded"] > 0

    def test_obs_section_round_trips_through_json(
        self, scenario_artifacts, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE", "1")
        record = replay_run(scenario_artifacts, "interactive")
        from repro.results import RunRecord

        row = record.to_json_dict()
        assert row["obs"] == record.obs
        restored = RunRecord.from_json_dict(json.loads(json.dumps(row)))
        assert restored.obs == record.obs
        assert restored == record


class TestTraceCommand:
    def test_trace_command_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        obs_path = tmp_path / "obs.json"
        argv = [
            "trace", SCENARIO, "--config", "interactive",
            "-o", str(trace_path), "--obs-json", str(obs_path),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert captured.out == ""  # summary is stderr-only
        assert "events ->" in captured.err

        # Structurally valid and covering every required event family
        # (governor, cpufreq, timer parking, frames, gesture windows).
        assert validate_file(trace_path) == []

        document = json.loads(trace_path.read_text(encoding="utf-8"))
        names = [event["name"] for event in document["traceEvents"]]
        assert any(name.startswith("governor_start:") for name in names)
        assert "opp_transition" in names
        assert any(name.startswith("parked:") for name in names)
        assert "frame" in names
        assert any(name.startswith("lag:") for name in names)

        obs_row = json.loads(obs_path.read_text(encoding="utf-8"))
        assert obs_row["trace_events"] == sum(
            1 for event in document["traceEvents"] if event["ph"] != "M"
        )

    def test_trace_command_accepts_dataset_names(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["trace", "03", "-o", str(trace_path)]) == 0
        capsys.readouterr()
        assert validate_file(trace_path) == []

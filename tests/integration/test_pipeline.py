"""End-to-end pipeline properties (the paper's Fig. 4 whole loop)."""

import pytest

from repro.analysis import Matcher
from repro.apps import install_standard_apps
from repro.capture import CaptureCard
from repro.core.simtime import seconds
from repro.device.device import Device
from repro.replay import ReplayAgent
from repro.uifw.view import WindowManager

from tests.conftest import run_gallery_session


def replay_and_match(trace, database, governor, duration_s=30):
    device = Device()
    wm = WindowManager(device)
    install_standard_apps(wm)
    device.set_governor(governor)
    ReplayAgent(device.engine, device.input_subsystem).schedule(trace)
    card = CaptureCard(device.display)
    card.start(device.engine.now)
    device.run_for(seconds(duration_s))
    video = card.stop(device.engine.now)
    return Matcher(database).match(video), wm


def test_matcher_agrees_with_ground_truth_across_frequencies(
    gallery_session, gallery_database
):
    """The matcher's lag lengths must track the replay device's own
    ground truth within one video frame at every frequency."""
    _dev, _wm, trace, _video = gallery_session
    for governor in ("fixed:300000", "fixed:960000", "fixed:2150400"):
        profile, wm = replay_and_match(trace, gallery_database, governor)
        truth = {
            r.gesture_index: r for r in wm.journal.interactions if r.complete
        }
        for lag in profile.lags:
            record = truth[lag.gesture_index]
            measured = lag.duration_us
            actual = record.end_time - record.begin_time
            assert measured == pytest.approx(actual, abs=40_000), (
                governor,
                lag.label,
            )


def test_lag_counts_constant_across_configurations(
    gallery_session, gallery_database
):
    """'Since the inputs are always the same … there will always be the
    same number of interaction lags' (paper §II-F)."""
    _dev, _wm, trace, _video = gallery_session
    counts = set()
    for governor in ("fixed:300000", "ondemand", "conservative"):
        profile, _wm2 = replay_and_match(trace, gallery_database, governor)
        counts.add(len(profile))
    assert counts == {gallery_database.lag_count}


def test_clock_mask_survives_shifted_replay(gallery_session, gallery_database):
    """Replaying later in wall-clock time changes the status-bar clock;
    the annotation masks must keep the matcher working."""
    _dev, _wm, trace, _video = gallery_session
    shifted = trace.shifted(seconds(130))  # clock shows a different minute
    device = Device()
    wm = WindowManager(device)
    install_standard_apps(wm)
    device.set_governor("fixed:960000")
    ReplayAgent(device.engine, device.input_subsystem).schedule(shifted)
    card = CaptureCard(device.display)
    card.start(device.engine.now)
    device.run_for(seconds(160))
    video = card.stop(device.engine.now)

    # Rebuild the database against the shifted gesture times.
    from repro.analysis.annotation import AnnotationDatabase, LagAnnotation

    shifted_db = AnnotationDatabase(
        gallery_database.workload_name,
        gallery_database.screen_width,
        gallery_database.screen_height,
    )
    for annotation in gallery_database.annotations:
        shifted_db.add(
            LagAnnotation(
                gesture_index=annotation.gesture_index,
                label=annotation.label,
                category=annotation.category,
                begin_time_us=annotation.begin_time_us + seconds(130),
                image=annotation.image,
                mask_rects=annotation.mask_rects,
                tolerance_px=annotation.tolerance_px,
                occurrence=annotation.occurrence,
                threshold_us=annotation.threshold_us,
            )
        )
    profile = Matcher(shifted_db).match(video)
    assert len(profile) == gallery_database.lag_count


def test_replay_determinism_full_pipeline(gallery_session, gallery_database):
    _dev, _wm, trace, _video = gallery_session
    first, _ = replay_and_match(trace, gallery_database, "ondemand")
    second, _ = replay_and_match(trace, gallery_database, "ondemand")
    assert first.durations_us() == second.durations_us()


def test_higher_frequency_never_more_irritating(
    gallery_session, gallery_database
):
    _dev, _wm, trace, _video = gallery_session
    slow, _ = replay_and_match(trace, gallery_database, "fixed:300000")
    fast, _ = replay_and_match(trace, gallery_database, "fixed:2150400")
    assert (
        fast.irritation().total_us <= slow.irritation().total_us
    )

"""Integration: the saved-artefact workflow a downstream user follows.

Record once → save to disk → (a new process would) load → replay under a
governor → match → metricise.  This is the 'workload suite others can use'
contribution (paper §I-A item 2).
"""

import pytest

from repro.analysis import AnnotationDatabase, Matcher
from repro.harness.experiment import WorkloadArtifacts, replay_run
from repro.harness.sweep import compose_oracle_from_runs
from repro.metrics.hci import SHNEIDERMAN_MODEL


def test_full_downstream_workflow(tmp_path, artifacts_ds03):
    # Save and reload the recorded workload.
    artifacts_ds03.save(tmp_path / "w")
    loaded = WorkloadArtifacts.load(tmp_path / "w")

    # Replay under a governor and a fixed configuration.
    governor_run = replay_run(loaded, "interactive")
    fixed_run = replay_run(loaded, "fixed:960000")

    # Metrics behave as documented.
    irritation = governor_run.lag_profile.irritation(model=SHNEIDERMAN_MODEL)
    assert irritation.lag_count == loaded.database.lag_count
    assert irritation.total_seconds < 10
    assert fixed_run.dynamic_energy_j > 0


def test_annotation_database_usable_standalone(tmp_path, artifacts_ds03):
    """The matcher needs only the on-disk database, not the journal."""
    artifacts_ds03.database.save(tmp_path / "db")
    database = AnnotationDatabase.load(tmp_path / "db")
    run = replay_run(artifacts_ds03, "fixed:1497600")
    # Re-match the replayed video-equivalent via the loaded database by
    # comparing against the run's existing profile.
    reference = run.lag_profile
    assert database.lag_count == len(reference)
    for annotation, lag in zip(database.annotations, reference.lags):
        assert annotation.label == lag.label
        assert annotation.begin_time_us == lag.begin_time_us


def test_oracle_composable_from_partial_sweep(artifacts_ds03):
    """compose_oracle_from_runs works from exactly the 14 fixed runs."""
    runs = {}
    from repro.harness.sweep import fixed_configs

    for config in fixed_configs():
        runs[config] = [replay_run(artifacts_ds03, config)]
    oracle = compose_oracle_from_runs(artifacts_ds03, runs)
    assert oracle.base_khz == 960_000
    assert oracle.irritation().total_us == 0
    with pytest.raises(Exception):
        compose_oracle_from_runs(artifacts_ds03, {})

"""Streaming-vs-batch equivalence for the run pipeline (REPRO_STREAM).

The streaming path (frame taps → online matcher → accumulators →
RunRecord) must produce bit-identical study output to the batch
materialise-then-analyze path, across personas, device profiles, the
fleet engine at any job count, and warm cache re-runs — and it must do so
in strictly less memory.
"""

import tracemalloc

import pytest

from repro.capture import FrameDigestTap, stream_enabled
from repro.fleet.cache import ResultCache
from repro.fleet.engine import FleetEngine
from repro.fleet.spec import RunSpec
from repro.harness.experiment import record_workload, replay_run
from repro.workloads.datasets import dataset

# Two personas and one alternate device profile: enough to cover the
# persona plumbing, the profile plumbing and the stock path end to end.
SCENARIOS = (
    "persona=gamer,seed=11,duration=45s",
    "persona=reader,seed=5,duration=45s",
    "persona=messenger,seed=3,duration=45s,profile=quad_ls",
)
CONFIGS = ("qoe_aware", "ondemand")


@pytest.fixture(scope="module")
def scenario_artifacts():
    return {name: record_workload(dataset(name)) for name in SCENARIOS}


def _digests(result, tap):
    return {
        "energy": repr(result.energy_j),
        "dynamic_energy": repr(result.dynamic_energy_j),
        "busy_us": result.busy_us,
        "lags": result.lag_profile.durations_us(),
        "lag_meta": [
            (l.label, l.begin_time_us, l.end_frame) for l in result.lag_profile.lags
        ],
        "transitions": result.transitions,
        "busy_intervals": result.busy_intervals,
        "frames": tap.hexdigest(),
    }


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_stream_off_is_bit_identical(scenario_artifacts, scenario, monkeypatch):
    """Per persona/profile/config: REPRO_STREAM=0 replays identically."""
    artifacts = scenario_artifacts[scenario]
    for config in CONFIGS:
        monkeypatch.setenv("REPRO_STREAM", "1")
        stream_tap = FrameDigestTap()
        streamed = _digests(
            replay_run(artifacts, config, frame_tap=stream_tap), stream_tap
        )
        monkeypatch.setenv("REPRO_STREAM", "0")
        batch_tap = FrameDigestTap()
        batch = _digests(
            replay_run(artifacts, config, frame_tap=batch_tap), batch_tap
        )
        assert streamed == batch, (scenario, config)


def test_streaming_is_the_default(monkeypatch):
    monkeypatch.delenv("REPRO_STREAM", raising=False)
    assert stream_enabled()


def test_fleet_jobs2_matches_streamed_direct_replay(scenario_artifacts):
    artifacts = scenario_artifacts[SCENARIOS[0]]
    specs = [
        RunSpec(
            dataset=artifacts.name,
            config=config,
            rep=0,
            master_seed=artifacts.recording_master_seed,
        )
        for config in CONFIGS
    ]
    fleet_results = FleetEngine(jobs=2).run(artifacts, specs)
    for spec, fleet_result in zip(specs, fleet_results):
        direct = replay_run(
            artifacts, spec.config, rep=0,
            master_seed=artifacts.recording_master_seed,
        )
        assert fleet_result == direct


def test_warm_cache_rerun_serves_identical_records_across_modes(
    tmp_path, scenario_artifacts, monkeypatch
):
    """Cells cached by a streaming run satisfy a batch-mode re-run, and
    the warm pass executes zero replays."""
    artifacts = scenario_artifacts[SCENARIOS[1]]
    specs = [
        RunSpec(
            dataset=artifacts.name,
            config=config,
            rep=0,
            master_seed=artifacts.recording_master_seed,
        )
        for config in CONFIGS
    ]
    cache = ResultCache(tmp_path)
    monkeypatch.setenv("REPRO_STREAM", "1")
    engine = FleetEngine(jobs=1, cache=cache)
    cold = engine.run(artifacts, specs)
    assert engine.last_stats.executed == len(specs)

    monkeypatch.setenv("REPRO_STREAM", "0")
    warm = FleetEngine(jobs=2, cache=cache)
    results = warm.run(artifacts, specs)
    assert warm.last_stats.executed == 0
    assert warm.last_stats.cache_hits == len(specs)
    assert results == cold


def test_streaming_replay_uses_less_peak_memory(scenario_artifacts, monkeypatch):
    """The point of the pipeline: replay allocations drop from O(session)
    (whole video buffered) to O(active-window)."""
    artifacts = scenario_artifacts[SCENARIOS[0]]

    def peak_of(stream_flag):
        monkeypatch.setenv("REPRO_STREAM", stream_flag)
        tracemalloc.start()
        try:
            replay_run(artifacts, "ondemand")
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    batch_peak = peak_of("0")
    stream_peak = peak_of("1")
    assert stream_peak < batch_peak, (stream_peak, batch_peak)

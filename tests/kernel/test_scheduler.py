"""Unit tests for the single-core preemptive scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.device.cpu import CpuCore
from repro.device.cpufreq import RELATION_HIGH, CpuFreqPolicy
from repro.device.frequencies import snapdragon_8074_table
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import PRIORITY_BACKGROUND, PRIORITY_FOREGROUND, Task


@pytest.fixture
def rig():
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    policy = CpuFreqPolicy(engine.clock, core)
    scheduler = Scheduler(engine, core)
    policy.add_transition_observer(
        lambda _t, _khz: scheduler.notify_frequency_change()
    )
    return engine, core, policy, scheduler


def test_task_completion_time_matches_frequency(rig):
    engine, core, _policy, scheduler = rig
    done = []
    # 300e6 cycles at 0.30 GHz = exactly 1 second.
    scheduler.submit(Task("t", 300e6, on_complete=lambda t: done.append(engine.now)))
    engine.run_until(2_000_000)
    assert done == [1_000_000]


def test_core_busy_while_running(rig):
    engine, core, _policy, scheduler = rig
    scheduler.submit(Task("t", 300e6))
    engine.run_until(500_000)
    assert core.busy
    engine.run_until(1_500_000)
    assert not core.busy


def test_fifo_within_priority(rig):
    engine, _core, _policy, scheduler = rig
    order = []
    scheduler.submit(Task("a", 30e6, on_complete=lambda t: order.append("a")))
    scheduler.submit(Task("b", 30e6, on_complete=lambda t: order.append("b")))
    engine.run_until(1_000_000)
    assert order == ["a", "b"]


def test_foreground_preempts_background(rig):
    engine, _core, _policy, scheduler = rig
    order = []
    scheduler.submit(
        Task("bg", 300e6, PRIORITY_BACKGROUND, lambda t: order.append("bg"))
    )
    engine.run_until(100_000)
    scheduler.submit(
        Task("fg", 30e6, PRIORITY_FOREGROUND, lambda t: order.append("fg"))
    )
    engine.run_until(3_000_000)
    assert order == ["fg", "bg"]


def test_preempted_task_total_time_preserved(rig):
    engine, _core, _policy, scheduler = rig
    done = {}
    scheduler.submit(
        Task("bg", 300e6, PRIORITY_BACKGROUND, lambda t: done.setdefault("bg", engine.now))
    )
    engine.run_until(100_000)
    scheduler.submit(
        Task("fg", 150e6, PRIORITY_FOREGROUND, lambda t: done.setdefault("fg", engine.now))
    )
    engine.run_until(5_000_000)
    # fg runs 0.5s from 0.1s; bg needs 1.0s total, so it ends at 1.5s.
    assert done["fg"] == 600_000
    assert done["bg"] == 1_500_000


def test_frequency_change_rescales_remaining_work(rig):
    engine, _core, policy, scheduler = rig
    done = []
    scheduler.submit(Task("t", 600e6, on_complete=lambda t: done.append(engine.now)))
    engine.schedule_at(
        1_000_000, lambda: policy.set_target(2_150_400, RELATION_HIGH)
    )
    engine.run_until(3_000_000)
    # 1s at 0.3 GHz retires 300e6; remaining 300e6 at 2.1504 GHz ~ 139.5 ms.
    assert done[0] == pytest.approx(1_139_509, abs=5)


def test_completed_cycles_accounted(rig):
    engine, core, _policy, scheduler = rig
    scheduler.submit(Task("a", 50e6))
    scheduler.submit(Task("b", 70e6))
    engine.run_until(2_000_000)
    assert scheduler.completed_tasks == 2
    assert scheduler.completed_cycles == pytest.approx(120e6)
    # The core retired at least the demanded cycles (ceil rounding).
    assert core.cycles_retired >= 120e6 - 1
    assert core.cycles_retired == pytest.approx(120e6, rel=1e-3)


def test_idle_listener_fires_when_queue_drains(rig):
    engine, _core, _policy, scheduler = rig
    idles = []
    scheduler.add_idle_listener(lambda: idles.append(engine.now))
    scheduler.submit(Task("t", 30e6))
    engine.run_until(1_000_000)
    assert len(idles) == 1


def test_resubmit_completed_task_rejected(rig):
    engine, _core, _policy, scheduler = rig
    task = Task("t", 30e6)
    scheduler.submit(task)
    engine.run_until(1_000_000)
    with pytest.raises(SimulationError):
        scheduler.submit(task)


def test_back_to_back_tasks_have_no_idle_gap(rig):
    engine, core, _policy, scheduler = rig
    scheduler.submit(Task("a", 30e6))
    scheduler.submit(Task("b", 30e6))
    engine.run_until(1_000_000)
    # Total busy time equals the two tasks' demand (no gaps double-counted).
    assert core.busy_time_total() == pytest.approx(200_000, abs=3)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.floats(min_value=1e6, max_value=200e6), min_size=1, max_size=6
    )
)
def test_work_conservation(task_cycles):
    """Whatever the mix, completed cycles equal the demanded cycles."""
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    scheduler = Scheduler(engine, core)
    for index, cycles in enumerate(task_cycles):
        priority = PRIORITY_BACKGROUND if index % 2 else PRIORITY_FOREGROUND
        scheduler.submit(Task(f"t{index}", cycles, priority))
    engine.run_until(30_000_000)
    assert scheduler.completed_tasks == len(task_cycles)
    assert scheduler.completed_cycles == pytest.approx(sum(task_cycles))

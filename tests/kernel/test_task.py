"""Unit tests for tasks."""

import pytest

from repro.core.errors import SimulationError
from repro.kernel.task import PRIORITY_BACKGROUND, PRIORITY_FOREGROUND, Task


def test_task_ids_unique():
    assert Task("a", 1e6).task_id != Task("b", 1e6).task_id


def test_zero_cycles_rejected():
    with pytest.raises(SimulationError):
        Task("t", 0)


def test_negative_cycles_rejected():
    with pytest.raises(SimulationError):
        Task("t", -5)


def test_unknown_priority_rejected():
    with pytest.raises(SimulationError):
        Task("t", 1e6, priority=7)


def test_fresh_task_state():
    task = Task("t", 5e6, PRIORITY_BACKGROUND)
    assert not task.done
    assert task.remaining_cycles == 5e6
    assert task.started_at is None


def test_repr_shows_state():
    task = Task("t", 5e6)
    assert "5000000" in repr(task)
    task.completed_at = 10
    assert "done" in repr(task)

"""Park/unpark behaviour of PeriodicTimer (the governors' tick elision)."""

import pytest

from repro.core.engine import PRIORITY_DEFAULT, PRIORITY_INPUT, Engine
from repro.core.errors import SimulationError
from repro.kernel.timers import PeriodicTimer


def make_timer(engine, period=10_000, park_at=None, hold_until=None):
    """A started timer whose callback records ticks and may self-park.

    ``park_at``: park indefinitely at that tick time; ``hold_until``:
    park_until the given wake time at the first tick.  Parking happens
    from inside the timer's own callback, exactly as the governors do.
    """
    ticks = []
    holder = {}

    def tick():
        ticks.append(engine.now)
        timer = holder["timer"]
        if park_at is not None and engine.now == park_at:
            timer.park()
        if hold_until is not None and engine.now == ticks[0]:
            timer.park_until(hold_until)

    timer = PeriodicTimer(engine, period, tick)
    holder["timer"] = timer
    timer.start()
    return timer, ticks


def test_park_suspends_unpark_resumes_alignment():
    engine = Engine()
    timer, ticks = make_timer(engine, park_at=20_000)
    engine.run_until(55_000)
    assert ticks == [10_000, 20_000]
    assert timer.parked

    # Unpark from a later event: elided ticks are reported, alignment kept.
    elided_info = []
    engine.schedule_at(55_001, lambda: elided_info.append(timer.unpark()))
    engine.run_until(75_000)
    assert elided_info == [(3, 50_000)]  # 30k, 40k, 50k elided
    assert ticks == [10_000, 20_000, 60_000, 70_000]


def test_unpark_before_next_expiry_elides_nothing():
    engine = Engine()
    timer, ticks = make_timer(engine, park_at=10_000)
    engine.run_until(10_000)
    assert timer.parked
    engine.schedule_at(15_000, lambda: timer.unpark())
    engine.run_until(30_000)
    assert ticks == [10_000, 20_000, 30_000]


def test_unpark_tick_at_now_counts_by_priority():
    """An expiry at exactly `now` is elided only if the waking event runs
    after timer priority (i.e. the tick would already have fired)."""
    engine = Engine()
    timer, ticks = make_timer(engine, park_at=10_000)
    engine.run_until(10_000)
    results = []
    # Wake from PRIORITY_DEFAULT (50 > timer 20): the tick at 30_000 would
    # have fired before this event, so it counts as elided.
    engine.schedule_at(30_000, lambda: results.append(timer.unpark()),
                       priority=PRIORITY_DEFAULT)
    engine.run_until(30_000)
    assert results == [(2, 30_000)]  # 20_000 and 30_000 elided

    timer.park()
    # Wake from PRIORITY_INPUT (0 < 20): the tick at 60_000 fires after
    # the waking event, so it must not be elided — it fires for real.
    engine.schedule_at(60_000, lambda: results.append(timer.unpark()),
                       priority=PRIORITY_INPUT)
    engine.run_until(60_000)
    assert results[-1] == (2, 50_000)  # 40_000 and 50_000, not 60_000
    assert ticks[-1] == 60_000


def test_park_until_elides_through_deadline():
    engine = Engine()
    timer, ticks = make_timer(engine, hold_until=50_000)
    credited = []
    timer.on_elided = lambda n, last: credited.append((n, last))
    engine.run_until(70_000)
    # First tick at 10k parks; 20k, 30k, 40k elided; 50k fires via the
    # deadline, then normal expiries resume.
    assert ticks == [10_000, 50_000, 60_000, 70_000]
    assert credited == [(3, 40_000)]


def test_park_until_rejects_misaligned_wake():
    engine = Engine()
    errors = []
    holder = {}

    def tick():
        timer = holder["timer"]
        try:
            timer.park_until(engine.now + 15_000)  # off the 10ms grid
        except SimulationError as exc:
            errors.append(exc)
        timer.stop()

    timer = PeriodicTimer(engine, 10_000, tick)
    holder["timer"] = timer
    timer.start()
    engine.run_until(10_000)
    assert len(errors) == 1


def test_early_unpark_cancels_deadline():
    engine = Engine()
    timer, ticks = make_timer(engine, hold_until=90_000)
    timer.on_elided = lambda n, last: pytest.fail("deadline must not fire")
    engine.run_until(10_000)
    engine.schedule_at(25_000, lambda: timer.unpark())
    engine.run_until(40_000)
    assert ticks == [10_000, 30_000, 40_000]


def test_stop_while_parked_is_clean():
    engine = Engine()
    timer, ticks = make_timer(engine, park_at=10_000)
    engine.run_until(10_000)
    assert timer.parked
    timer.stop()
    assert not timer.running
    assert not timer.parked
    engine.run_until(100_000)
    assert ticks == [10_000]

"""Unit tests for periodic kernel timers."""

import pytest

from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.kernel.timers import PeriodicTimer


def test_fires_at_fixed_period():
    engine = Engine()
    ticks = []
    timer = PeriodicTimer(engine, 10_000, lambda: ticks.append(engine.now))
    timer.start()
    engine.run_until(35_000)
    assert ticks == [10_000, 20_000, 30_000]


def test_stop_cancels_future_fires():
    engine = Engine()
    ticks = []
    timer = PeriodicTimer(engine, 10_000, lambda: ticks.append(engine.now))
    timer.start()
    engine.schedule_at(25_000, timer.stop)
    engine.run_until(100_000)
    assert ticks == [10_000, 20_000]


def test_no_drift_accumulation():
    engine = Engine()
    ticks = []
    timer = PeriodicTimer(engine, 33_333, lambda: ticks.append(engine.now))
    timer.start()
    engine.run_until(10 * 33_333)
    assert ticks == [33_333 * k for k in range(1, 11)]


def test_invalid_period_rejected():
    with pytest.raises(SimulationError):
        PeriodicTimer(Engine(), 0, lambda: None)


def test_set_period_takes_effect_after_armed_expiry():
    engine = Engine()
    ticks = []
    timer = PeriodicTimer(engine, 10_000, lambda: ticks.append(engine.now))
    timer.start()
    # The 20_000 expiry is already armed when the period changes, so the
    # new period applies from the expiry after it.
    engine.schedule_at(10_000, lambda: timer.set_period(20_000))
    engine.run_until(55_000)
    assert ticks == [10_000, 20_000, 40_000]


def test_double_start_is_noop():
    engine = Engine()
    ticks = []
    timer = PeriodicTimer(engine, 10_000, lambda: ticks.append(engine.now))
    timer.start()
    timer.start()
    engine.run_until(10_000)
    assert ticks == [10_000]


def test_callback_stopping_timer_mid_fire():
    engine = Engine()
    ticks = []

    def tick():
        ticks.append(engine.now)
        if len(ticks) == 2:
            timer.stop()

    timer = PeriodicTimer(engine, 10_000, tick)
    timer.start()
    engine.run_until(100_000)
    assert ticks == [10_000, 20_000]

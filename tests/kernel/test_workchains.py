"""Unit tests for chunked background work."""

import pytest

from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.device.cpu import CpuCore
from repro.device.frequencies import snapdragon_8074_table
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import PRIORITY_FOREGROUND
from repro.kernel.workchains import submit_chunked


@pytest.fixture
def rig():
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    scheduler = Scheduler(engine, core)
    return engine, core, scheduler


def test_total_work_is_preserved(rig):
    engine, _core, scheduler = rig
    chunks = submit_chunked(
        engine, scheduler, "svc", 100e6, chunk_cycles=30e6, gap_us=1_000
    )
    engine.run_until(10_000_000)
    assert scheduler.completed_tasks == chunks
    assert scheduler.completed_cycles == pytest.approx(100e6)


def test_gaps_leave_the_core_idle(rig):
    engine, core, scheduler = rig
    submit_chunked(
        engine, scheduler, "svc", 60e6, chunk_cycles=30e6, gap_us=100_000
    )
    engine.run_until(10_000_000)
    # 60e6 cycles at 0.3 GHz = 200 ms busy; one 100 ms gap in between.
    assert core.busy_time_total() == pytest.approx(200_000, abs=5)


def test_single_chunk_for_small_work(rig):
    engine, _core, scheduler = rig
    chunks = submit_chunked(
        engine, scheduler, "svc", 10e6, chunk_cycles=30e6, gap_us=1_000
    )
    assert chunks == 1


def test_priority_passthrough(rig):
    engine, _core, scheduler = rig
    submit_chunked(
        engine,
        scheduler,
        "fg-chain",
        30e6,
        chunk_cycles=30e6,
        priority=PRIORITY_FOREGROUND,
    )
    assert scheduler.current_task.priority == PRIORITY_FOREGROUND


def test_invalid_parameters_rejected(rig):
    engine, _core, scheduler = rig
    with pytest.raises(SimulationError):
        submit_chunked(engine, scheduler, "svc", 0)
    with pytest.raises(SimulationError):
        submit_chunked(engine, scheduler, "svc", 10e6, chunk_cycles=0)
    with pytest.raises(SimulationError):
        submit_chunked(engine, scheduler, "svc", 10e6, gap_us=-1)

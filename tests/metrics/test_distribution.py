"""Unit and property tests for lag-duration distribution statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.metrics.distribution import (
    kernel_density,
    summarize_lags,
)


def test_empty_rejected():
    with pytest.raises(ReproError):
        summarize_lags([])


def test_single_value():
    summary = summarize_lags([500.0])
    assert summary.median_ms == 500.0
    assert summary.iqr_ms == 0.0
    assert summary.fliers_ms == ()


def test_quartiles_of_known_data():
    data = [float(x) for x in range(1, 101)]
    summary = summarize_lags(data)
    assert summary.median_ms == pytest.approx(50.5)
    assert summary.q1_ms == pytest.approx(25.75)
    assert summary.q3_ms == pytest.approx(75.25)


def test_outliers_become_fliers():
    data = [10.0] * 20 + [10_000.0]
    summary = summarize_lags(data)
    assert 10_000.0 in summary.fliers_ms
    assert summary.whisker_high_ms == 10.0


def test_whiskers_at_1_5_iqr():
    data = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0]
    summary = summarize_lags(data)
    assert summary.whisker_high_ms == 5.0
    assert summary.max_ms == 100.0


def test_kernel_density_integrates_to_one():
    rng = np.random.default_rng(1)
    data = list(rng.normal(500, 100, size=200))
    grid, density = kernel_density(data)
    integral = np.trapezoid(density, grid)
    assert integral == pytest.approx(1.0, abs=0.05)


def test_kernel_density_peak_near_mode():
    data = [100.0] * 50 + [900.0] * 5
    grid, density = kernel_density(data)
    assert abs(grid[np.argmax(density)] - 100.0) < 100


def test_kernel_density_single_point():
    grid, density = kernel_density([42.0])
    assert density.max() > 0


@given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=60))
def test_summary_orderings(data):
    summary = summarize_lags(data)
    assert summary.min_ms <= summary.q1_ms <= summary.median_ms
    assert summary.median_ms <= summary.q3_ms <= summary.max_ms
    assert summary.whisker_low_ms >= summary.min_ms
    assert summary.whisker_high_ms <= summary.max_ms
    assert summary.count == len(data)

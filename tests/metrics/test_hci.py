"""Unit tests for the Shneiderman HCI response-time model."""

import pytest

from repro.core.errors import ReproError
from repro.metrics.hci import (
    CATEGORY_COMMON,
    CATEGORY_COMPLEX,
    CATEGORY_SIMPLE,
    CATEGORY_TYPING,
    HciModel,
    SHNEIDERMAN_MODEL,
)


def test_paper_thresholds():
    """'typing (150ms), simple frequent task (1s), common task (4s) and
    complex task (12s)' — paper §II-F."""
    assert SHNEIDERMAN_MODEL.threshold_us(CATEGORY_TYPING) == 150_000
    assert SHNEIDERMAN_MODEL.threshold_us(CATEGORY_SIMPLE) == 1_000_000
    assert SHNEIDERMAN_MODEL.threshold_us(CATEGORY_COMMON) == 4_000_000
    assert SHNEIDERMAN_MODEL.threshold_us(CATEGORY_COMPLEX) == 12_000_000


def test_unknown_category_rejected():
    with pytest.raises(ReproError):
        SHNEIDERMAN_MODEL.threshold_us("heroic")


def test_categories_sorted():
    assert SHNEIDERMAN_MODEL.categories() == sorted(
        [CATEGORY_TYPING, CATEGORY_SIMPLE, CATEGORY_COMMON, CATEGORY_COMPLEX]
    )


def test_custom_model():
    model = HciModel("strict", {CATEGORY_TYPING: 50_000})
    assert model.threshold_us(CATEGORY_TYPING) == 50_000


def test_scaled_model():
    scaled = SHNEIDERMAN_MODEL.scaled(2.0)
    assert scaled.threshold_us(CATEGORY_TYPING) == 300_000
    assert scaled.name == "shneiderman*2"


def test_scaled_rejects_nonpositive():
    with pytest.raises(ReproError):
        SHNEIDERMAN_MODEL.scaled(0)

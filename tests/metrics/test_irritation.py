"""Unit and property tests for the user-irritation metric (Fig. 9)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.metrics.irritation import irritation


def test_lag_below_threshold_not_irritating():
    result = irritation([("a", 500_000, 1_000_000)])
    assert result.total_us == 0
    assert result.irritating_lag_count == 0


def test_penalty_is_excess_over_threshold():
    result = irritation([("a", 1_400_000, 1_000_000)])
    assert result.total_us == 400_000
    assert result.penalties[0].irritating


def test_metric_accumulates_over_lags():
    rows = [
        ("a", 1_200_000, 1_000_000),
        ("b", 100_000, 150_000),
        ("c", 5_000_000, 4_000_000),
    ]
    assert irritation(rows).total_us == 200_000 + 1_000_000


def test_exactly_at_threshold_not_irritating():
    assert irritation([("a", 1_000_000, 1_000_000)]).total_us == 0


def test_total_seconds():
    assert irritation([("a", 2_000_000, 1_000_000)]).total_seconds == 1.0


def test_worst_ranks_by_penalty():
    rows = [
        ("small", 1_100_000, 1_000_000),
        ("big", 9_000_000, 1_000_000),
        ("none", 100_000, 1_000_000),
    ]
    worst = irritation(rows).worst(2)
    assert [p.label for p in worst] == ["big", "small"]


def test_negative_duration_rejected():
    with pytest.raises(ReproError):
        irritation([("a", -1, 100)])


def test_negative_threshold_rejected():
    with pytest.raises(ReproError):
        irritation([("a", 1, -100)])


lag_rows = st.lists(
    st.tuples(
        st.just("lag"),
        st.integers(0, 20_000_000),
        st.integers(0, 12_000_000),
    ),
    max_size=20,
)


@given(lag_rows)
def test_metric_is_nonnegative(rows):
    assert irritation(rows).total_us >= 0


@given(lag_rows, st.integers(1, 1_000_000))
def test_metric_monotone_in_duration(rows, extra):
    """Making any lag longer can only increase irritation."""
    base = irritation(rows).total_us
    if rows:
        label, duration, threshold = rows[0]
        rows = [(label, duration + extra, threshold)] + rows[1:]
    assert irritation(rows).total_us >= base


@given(lag_rows, st.integers(1, 1_000_000))
def test_metric_antitone_in_threshold(rows, extra):
    """Raising any threshold can only decrease irritation."""
    base = irritation(rows).total_us
    if rows:
        label, duration, threshold = rows[0]
        rows = [(label, duration, threshold + extra)] + rows[1:]
    assert irritation(rows).total_us <= base

"""Tests for the jank (dropped-frame) analysis extension."""

import pytest

from repro.core.errors import ReproError
from repro.device.display import VSYNC_PERIOD_US
from repro.metrics.jank import analyze_jank
from repro.oracle.builder import BusyTimeline


def timeline(*intervals):
    return BusyTimeline(list(intervals))


def test_idle_run_has_no_jank():
    result = analyze_jank(timeline(), 10 * VSYNC_PERIOD_US)
    assert result.frames_total == 10
    assert result.frames_janky == 0
    assert result.jank_ratio == 0.0


def test_fully_busy_run_drops_every_frame():
    end = 10 * VSYNC_PERIOD_US
    result = analyze_jank(timeline((0, end)), end)
    assert result.frames_janky == 10
    assert result.jank_ratio == 1.0


def test_partial_busy_frame_is_not_janky():
    # Busy for half of frame 0 only.
    result = analyze_jank(
        timeline((0, VSYNC_PERIOD_US // 2)), 4 * VSYNC_PERIOD_US
    )
    assert result.frames_janky == 0


def test_exact_frame_boundary_busy_counts():
    result = analyze_jank(
        timeline((VSYNC_PERIOD_US, 2 * VSYNC_PERIOD_US)),
        4 * VSYNC_PERIOD_US,
    )
    assert result.frames_janky == 1


def test_per_lag_jank_reporting():
    from repro.analysis.lagprofile import LagMeasurement, LagProfile

    lag = LagMeasurement(
        lag_index=0,
        gesture_index=0,
        label="busy-lag",
        category="common",
        begin_time_us=0,
        end_frame=3,
        duration_us=3 * VSYNC_PERIOD_US,
        threshold_us=4_000_000,
    )
    profile = LagProfile("w", (lag,))
    busy = timeline((0, 3 * VSYNC_PERIOD_US))
    result = analyze_jank(busy, 10 * VSYNC_PERIOD_US, profile)
    assert result.per_lag[0].frames_janky == 3
    assert result.per_lag[0].jank_ratio == 1.0
    assert result.lag_frames_janky == 3
    assert result.worst_lags()[0].label == "busy-lag"


def test_invalid_duration_rejected():
    with pytest.raises(ReproError):
        analyze_jank(timeline(), 0)


def test_jank_decreases_with_frequency(artifacts_ds03):
    """Replays at higher frequencies drop fewer frames — the paper's
    motivation for jank-dominated workloads."""
    from repro.harness.experiment import replay_run

    slow = replay_run(artifacts_ds03, "fixed:300000")
    fast = replay_run(artifacts_ds03, "fixed:2150400")
    slow_jank = analyze_jank(
        slow.busy_timeline, slow.duration_us, slow.lag_profile
    )
    fast_jank = analyze_jank(
        fast.busy_timeline, fast.duration_us, fast.lag_profile
    )
    assert slow_jank.frames_janky > fast_jank.frames_janky
    assert slow_jank.lag_frames_janky > fast_jank.lag_frames_janky

"""Edge cases for the irritation and jank metrics, surfaced by
synthetic sessions: zero-input sessions, back-to-back inputs inside one
settle window, and sessions ending mid-interaction."""

import pytest

from repro.analysis import AutoAnnotator, Matcher
from repro.apps import install_standard_apps
from repro.capture import CaptureCard
from repro.core.errors import ReproError
from repro.core.simtime import seconds
from repro.device.device import Device
from repro.device.display import VSYNC_PERIOD_US
from repro.metrics.irritation import IrritationResult, irritation
from repro.metrics.jank import analyze_jank
from repro.oracle.builder import BusyTimeline
from repro.uifw.view import WindowManager
from repro.workloads.datasets import (
    DatasetSpec,
    dataset,
    register_dataset,
    unregister_dataset,
)
from repro.workloads.sessions import PlanStep


# --- irritation unit edges ------------------------------------------------------------


def test_irritation_of_zero_lags_is_zero():
    result = irritation([])
    assert result.total_us == 0
    assert result.total_seconds == 0.0
    assert result.lag_count == 0
    assert result.irritating_lag_count == 0
    assert result.worst() == []


def test_lag_exactly_at_threshold_is_not_irritating():
    result = irritation([("tap", 150_000, 150_000)])
    assert result.total_us == 0
    assert not result.penalties[0].irritating
    just_over = irritation([("tap", 150_001, 150_000)])
    assert just_over.total_us == 1
    assert just_over.irritating_lag_count == 1


def test_negative_durations_and_thresholds_rejected():
    with pytest.raises(ReproError):
        irritation([("tap", -1, 100)])
    with pytest.raises(ReproError):
        irritation([("tap", 100, -1)])


def test_zero_duration_lag_contributes_nothing():
    result = irritation([("instant", 0, 0)])
    assert result.total_us == 0
    assert not result.penalties[0].irritating


# --- jank unit edges ------------------------------------------------------------------


def test_jank_of_empty_timeline_is_zero():
    result = analyze_jank(BusyTimeline([]), 10 * VSYNC_PERIOD_US)
    assert result.frames_total == 10
    assert result.frames_janky == 0
    assert result.jank_ratio == 0.0


def test_jank_duration_must_be_positive():
    with pytest.raises(ReproError):
        analyze_jank(BusyTimeline([]), 0)


def test_jank_partial_trailing_frame_is_not_counted():
    """A run ending mid-vsync only counts the full frames before it."""
    busy = BusyTimeline([(0, 3 * VSYNC_PERIOD_US)])
    result = analyze_jank(busy, 2 * VSYNC_PERIOD_US + VSYNC_PERIOD_US // 2)
    assert result.frames_total == 2
    assert result.frames_janky == 2


def test_jank_lag_window_shorter_than_one_frame():
    """A sub-frame lag (begin == end, or inside one vsync) has no frames."""
    from repro.analysis.lagprofile import LagMeasurement, LagProfile

    lag = LagMeasurement(
        lag_index=0,
        gesture_index=0,
        label="blink",
        category="typing",
        begin_time_us=5_000,
        end_frame=1,
        duration_us=0,
        threshold_us=150_000,
    )
    profile = LagProfile("edge", (lag,))
    result = analyze_jank(
        BusyTimeline([(0, VSYNC_PERIOD_US)]), 4 * VSYNC_PERIOD_US, profile
    )
    assert result.per_lag[0].frames_total == 0
    assert result.per_lag[0].jank_ratio == 0.0


def test_jank_lag_extending_past_run_end():
    """A lag window past the busy trace's end reads as idle frames."""
    from repro.analysis.lagprofile import LagMeasurement, LagProfile

    lag = LagMeasurement(
        lag_index=0,
        gesture_index=0,
        label="tail",
        category="common",
        begin_time_us=2 * VSYNC_PERIOD_US,
        end_frame=9,
        duration_us=6 * VSYNC_PERIOD_US,
        threshold_us=1_000_000,
    )
    profile = LagProfile("edge", (lag,))
    result = analyze_jank(
        BusyTimeline([(0, 4 * VSYNC_PERIOD_US)]),
        8 * VSYNC_PERIOD_US,
        profile,
    )
    assert result.per_lag[0].frames_total == 6
    assert result.per_lag[0].frames_janky == 2


# --- synthetic-session edges ----------------------------------------------------------


def test_zero_input_session_records_and_scores_zero():
    """An empty plan: no gestures, no lags, zero irritation, jank runs."""
    from repro.harness.experiment import record_workload, replay_run

    spec = DatasetSpec(
        name="edge-empty",
        description="Zero-input session.",
        duration_us=seconds(5),
        plan_factory=lambda rng: iter(()),
    )
    register_dataset(spec)
    try:
        artifacts = record_workload(spec)
        assert artifacts.input_count == 0
        assert artifacts.classification.total_inputs == 0
        result = replay_run(artifacts, "ondemand")
        assert len(result.lag_profile.lags) == 0
        assert result.irritation_seconds() == 0.0
        assert isinstance(
            result.lag_profile.irritation(), IrritationResult
        )
        jank = analyze_jank(
            result.busy_timeline, result.duration_us, result.lag_profile
        )
        assert jank.per_lag == ()
        assert 0.0 <= jank.jank_ratio <= 1.0
    finally:
        unregister_dataset("edge-empty")


def test_back_to_back_inputs_inside_one_settle_window():
    """Two taps 120 ms apart (inside the 200 ms settle window) annotate
    and score as two distinct typing lags."""
    device = Device()
    wm = WindowManager(device)
    install_standard_apps(wm)
    device.set_governor("fixed:300000")
    card = CaptureCard(device.display)
    card.start(device.engine.now)
    launcher = wm.app("launcher")
    calculator = wm.app("calculator")
    touch = device.touchscreen
    touch.schedule_tap(seconds(1), launcher.tap_target("icon:calculator"))
    device.engine.schedule_at(
        seconds(8),
        lambda: touch.schedule_tap(seconds(9), calculator.tap_target("key:1")),
    )
    device.engine.schedule_at(
        seconds(8),
        lambda: touch.schedule_tap(
            seconds(9) + 120_000, calculator.tap_target("key:2")
        ),
    )
    device.run_for(seconds(14))
    video = card.stop(device.engine.now)
    database = AutoAnnotator("edge-burst").annotate(video, wm.journal)
    assert database.lag_count == 3  # launch + two key taps
    profile = Matcher(database).match(video)
    assert len(profile.lags) == 3
    key_lags = [lag for lag in profile.lags if "key:" in lag.label]
    assert len(key_lags) == 2
    assert all(lag.duration_us >= 0 for lag in profile.lags)
    # The metric accepts the profile whole.
    profile.irritation()


def test_session_ending_mid_interaction_still_records_cleanly():
    """A tap whose finger is down at the session deadline: the recorder
    waits for the in-flight gesture's interaction instead of cutting the
    video before it opens (regression for the quiescence race)."""
    from repro.harness.experiment import record_workload

    def plan(rng):
        yield PlanStep("tap", "launcher", "icon:gallery", 2_980_000)

    spec = DatasetSpec(
        name="edge-midflight",
        description="Tap straddling the deadline.",
        duration_us=seconds(3),
        plan_factory=plan,
    )
    register_dataset(spec)
    try:
        artifacts = record_workload(spec)
        assert artifacts.input_count == 1
        assert artifacts.database.lag_count == 1
        assert artifacts.duration_us > spec.duration_us
    finally:
        unregister_dataset("edge-midflight")

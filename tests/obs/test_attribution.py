"""Unit and property tests for the lag attribution engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.lagprofile import LagMeasurement
from repro.obs.attribution import (
    ATTRIBUTION_SCHEMA_VERSION,
    CAUSES,
    apportion_penalty,
    attribute_record,
    attribute_window,
    cause_order_key,
    render_report,
)
from repro.obs.attribution.causes import (
    CAUSE_AT_SPEED,
    CAUSE_COMPOSITOR,
    CAUSE_LATE_BOOST,
    CAUSE_PARK_WAKE,
    CAUSE_SETTLE_HOLD,
    CAUSE_SLOW_RAMP,
    CAUSE_STALE_LOAD,
    CAUSE_UNATTRIBUTED,
)
from repro.results import RunRecord


def lag(index=0, begin=0, duration=1_000, threshold=400, label=None):
    return LagMeasurement(
        lag_index=index,
        gesture_index=index,
        label=label or f"lag{index}",
        category="simple_frequent",
        begin_time_us=begin,
        end_frame=0,
        duration_us=duration,
        threshold_us=threshold,
    )


def attribute(
    the_lag, transitions=(), busy=(), boosts=()
):
    freq_ts = [ts for ts, _ in transitions]
    freq_khz = [khz for _, khz in transitions]
    busy_starts = [start for start, _ in busy]
    busy_ends = [end for _, end in busy]
    return attribute_window(
        the_lag, freq_ts, freq_khz, busy_starts, busy_ends, sorted(boosts)
    )


class TestCauseOrder:
    def test_taxonomy_order_is_canonical(self):
        assert sorted(CAUSES, key=cause_order_key) == list(CAUSES)

    def test_unknown_causes_sort_last(self):
        assert cause_order_key("zzz-new") > cause_order_key(CAUSES[-1])


class TestApportionment:
    def test_zero_penalty_is_empty(self):
        assert apportion_penalty(0, [("a", 10)]) == []

    def test_no_shares_falls_back_to_unattributed(self):
        assert apportion_penalty(100, []) == [(CAUSE_UNATTRIBUTED, 100)]
        assert apportion_penalty(100, [("a", 0)]) == [
            (CAUSE_UNATTRIBUTED, 100)
        ]

    def test_proportional_split_is_exact(self):
        split = apportion_penalty(100, [("a", 1), ("b", 1), ("c", 1)])
        assert sum(us for _, us in split) == 100
        # Largest remainder: 34/33/33 with the leftover going to 'a'.
        assert split == [("a", 34), ("b", 33), ("c", 33)]

    @given(
        penalty=st.integers(min_value=0, max_value=10**9),
        shares=st.lists(
            st.integers(min_value=0, max_value=10**7), min_size=0, max_size=8
        ),
    )
    def test_always_sums_exactly(self, penalty, shares):
        named = [(f"c{i}", us) for i, us in enumerate(shares)]
        split = apportion_penalty(penalty, named)
        assert sum(us for _, us in split) == penalty
        assert all(us > 0 for _, us in split) or penalty == 0


class TestWindowRules:
    def test_at_ceiling_from_start_is_at_speed(self):
        w = attribute(
            lag(duration=1_000),
            transitions=[(-5_000, 2_000_000)],
            busy=[(0, 1_000)],
        )
        assert w.segments == ((0, 1_000, CAUSE_AT_SPEED),)
        assert w.reaction_us == 0

    def test_no_busy_time_is_all_compositor_backlog(self):
        w = attribute(lag(duration=1_000), transitions=[(-5_000, 600_000)])
        assert w.segments == ((0, 1_000, CAUSE_COMPOSITOR),)

    def test_tail_after_last_busy_span_is_compositor(self):
        w = attribute(
            lag(duration=1_000),
            transitions=[(-5_000, 600_000)],
            busy=[(0, 700)],
        )
        assert w.segments[-1] == (700, 1_000, CAUSE_COMPOSITOR)

    def test_boost_reacting_first_attributes_late_boost(self):
        w = attribute(
            lag(duration=1_000),
            transitions=[(-5_000, 300_000), (150, 600_000)],
            busy=[(0, 1_000)],
            boosts=[150],
        )
        assert w.segments[0] == (0, 150, CAUSE_LATE_BOOST)
        assert w.reaction_us == 150

    def test_tick_reacting_first_attributes_park_wake(self):
        w = attribute(
            lag(duration=1_000),
            transitions=[(-5_000, 300_000), (200, 600_000)],
            busy=[(0, 1_000)],
        )
        assert w.segments[0] == (0, 200, CAUSE_PARK_WAKE)

    def test_busy_below_ceiling_is_slow_ramp(self):
        # Two-step ramp: after the first rise (the reaction) the core is
        # still busy below the window's peak OPP.
        w = attribute(
            lag(duration=1_000),
            transitions=[(-5_000, 300_000), (200, 450_000), (600, 600_000)],
            busy=[(0, 1_000)],
        )
        assert (200, 600, CAUSE_SLOW_RAMP) in w.segments
        assert (600, 1_000, CAUSE_AT_SPEED) in w.segments

    def test_idle_after_mid_window_drop_is_settle_hold(self):
        w = attribute(
            lag(duration=1_000),
            transitions=[(-5_000, 600_000), (400, 300_000)],
            busy=[(0, 300), (800, 900)],
        )
        assert (400, 800, CAUSE_SETTLE_HOLD) in w.segments
        assert w.segments[-1] == (900, 1_000, CAUSE_COMPOSITOR)

    def test_idle_below_ceiling_without_drop_is_stale_load(self):
        # Ramp still climbing, core idle in between: the governor's load
        # picture is stale, not a deliberate settle.
        w = attribute(
            lag(duration=1_000),
            transitions=[(-5_000, 300_000), (200, 450_000), (600, 600_000)],
            busy=[(0, 100), (900, 950)],
        )
        assert (200, 600, CAUSE_STALE_LOAD) in w.segments

    def test_zero_duration_window_has_no_segments(self):
        w = attribute(lag(duration=0, threshold=0))
        assert w.segments == ()
        assert w.penalty_us == 0

    def test_no_transitions_at_all(self):
        w = attribute(lag(duration=1_000), busy=[(0, 1_000)])
        assert sum(end - start for start, end, _ in w.segments) == 1_000

    def test_coverage_is_exhaustive_and_penalty_exact(self):
        w = attribute(
            lag(duration=1_000, threshold=300),
            transitions=[(-5_000, 300_000), (250, 600_000)],
            busy=[(0, 700)],
            boosts=[100],
        )
        assert sum(end - start for start, end, _ in w.segments) == 1_000
        assert sum(us for _, us in w.window_by_cause) == 1_000
        assert sum(us for _, us in w.penalty_by_cause) == w.penalty_us == 700

    def test_dominant_cause_prefers_largest_penalty(self):
        w = attribute(
            lag(duration=1_000, threshold=0),
            transitions=[(-5_000, 600_000)],
            busy=[(0, 900)],
        )
        assert w.dominant_cause == CAUSE_AT_SPEED


@st.composite
def window_inputs(draw):
    duration = draw(st.integers(min_value=1, max_value=5_000))
    threshold = draw(st.integers(min_value=0, max_value=5_000))
    boosts = draw(
        st.lists(st.integers(min_value=0, max_value=5_000), max_size=3)
    )
    step_ts = sorted(
        draw(
            st.sets(
                st.integers(min_value=-1_000, max_value=5_000),
                min_size=0,
                max_size=5,
            )
        )
    )
    steps = [
        (ts, draw(st.sampled_from([300_000, 600_000, 1_000_000])))
        for ts in step_ts
    ]
    edges = sorted(
        draw(
            st.sets(
                st.integers(min_value=-500, max_value=6_000),
                min_size=0,
                max_size=6,
            )
        )
    )
    busy = [
        (edges[i], edges[i + 1]) for i in range(0, len(edges) - 1, 2)
    ]
    return duration, threshold, steps, busy, sorted(boosts)


class TestWindowProperties:
    @given(window_inputs())
    def test_segments_cover_window_and_sums_are_exact(self, inputs):
        duration, threshold, steps, busy, boosts = inputs
        w = attribute(
            lag(duration=duration, threshold=threshold),
            transitions=steps,
            busy=busy,
            boosts=boosts,
        )
        # Exhaustive: contiguous segments covering [0, duration) exactly.
        assert sum(end - start for start, end, _ in w.segments) == duration
        cursor = 0
        for start, end, _cause in w.segments:
            assert start == cursor
            assert end > start
            cursor = end
        assert cursor == duration
        assert sum(us for _, us in w.window_by_cause) == duration
        # Penalty apportionment reconstructs the penalty to the microsecond.
        assert w.penalty_us == max(0, duration - threshold)
        assert sum(us for _, us in w.penalty_by_cause) == w.penalty_us


def make_record():
    return RunRecord(
        workload="w",
        config="interactive",
        rep=0,
        duration_us=10_000,
        energy_j=1.0,
        dynamic_energy_j=0.5,
        busy_us=5_000,
        transitions=[(0, 300_000), (1_200, 600_000)],
        busy_intervals=[(1_000, 2_000), (4_000, 5_500)],
        lags=(
            lag(0, begin=1_000, duration=1_000, threshold=400),
            lag(1, begin=4_000, duration=1_500, threshold=500),
        ),
    )


class TestRunAttribution:
    def test_totals_reconstruct_run_irritation(self):
        attribution = attribute_record(make_record(), boosts=[1_050])
        total = sum(
            max(0, l.duration_us - l.threshold_us) for l in make_record().lags
        )
        assert attribution.total_penalty_us == total
        assert sum(attribution.per_cause_penalty_us().values()) == total
        assert attribution.unattributed_penalty_us == 0

    def test_summary_is_json_safe_and_versioned(self):
        summary = attribute_record(make_record()).summary()
        assert summary["schema_version"] == ATTRIBUTION_SCHEMA_VERSION
        assert summary["windows"] == 2
        assert sum(summary["per_cause_penalty_us"].values()) == (
            summary["total_penalty_us"]
        )
        import json

        json.dumps(summary)  # must not raise

    def test_attributed_profile_carries_causes(self):
        attribution = attribute_record(make_record())
        profile = attribution.attributed_profile()
        assert len(profile.attributions) == 2
        assert sum(profile.per_cause_irritation_us().values()) == (
            attribution.total_penalty_us
        )

    def test_empty_record_has_no_dominant_cause(self):
        record = make_record()
        empty = RunRecord(
            workload="w",
            config="interactive",
            rep=0,
            duration_us=10_000,
            energy_j=1.0,
            dynamic_energy_j=0.5,
            busy_us=0,
            transitions=[],
            busy_intervals=[],
            lags=(),
        )
        assert attribute_record(empty).dominant_cause is None
        assert attribute_record(record).dominant_cause is not None


class TestReport:
    def test_report_lists_causes_and_dominant(self):
        record = make_record()
        text = render_report(attribute_record(record, boosts=[1_050]))
        assert "# attribution w [interactive]: 2 window(s)" in text
        assert "dominant cause:" in text
        assert CAUSE_UNATTRIBUTED not in text

    def test_empty_report(self):
        empty = RunRecord(
            workload="w",
            config="ondemand",
            rep=0,
            duration_us=1_000,
            energy_j=1.0,
            dynamic_energy_j=0.5,
            busy_us=0,
            transitions=[],
            busy_intervals=[],
            lags=(),
        )
        text = render_report(attribute_record(empty))
        assert "(no lag windows)" in text
        assert "dominant cause: none" in text

"""Tests for trace annotation and trace diffing."""

import copy
import json

import pytest

from repro.core.errors import ReproError
from repro.obs.attribution import (
    annotate_document,
    attribute_record,
    diff_documents,
    diff_trace_files,
    extract_windows,
    render_diff,
)
from repro.obs.trace import PID_DEVICE, TID_ATTRIBUTION, TID_GESTURES
from tests.obs.test_attribution import make_record


def lag_span(ts, label, dur):
    return {
        "name": f"lag:{label}",
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": PID_DEVICE,
        "tid": TID_GESTURES,
        "args": {},
    }


def cause_span(ts, dur, cause, label):
    return {
        "name": f"cause:{cause}",
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": PID_DEVICE,
        "tid": TID_ATTRIBUTION,
        "args": {"lag": label, "cause": cause, "window_penalty_us": 0},
    }


def document(events, name=None):
    metadata = []
    if name is not None:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": PID_DEVICE,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {"traceEvents": metadata + list(events)}


class TestAnnotate:
    def test_cause_spans_added_on_attribution_track(self):
        attribution = attribute_record(
            make_record(), boosts=[1_050]
        )
        doc = document([lag_span(1_000, "lag0", 1_000)])
        annotated = annotate_document(doc, attribution)
        causes = [
            e
            for e in annotated["traceEvents"]
            if e.get("tid") == TID_ATTRIBUTION
        ]
        assert causes
        assert all(e["name"].startswith("cause:") for e in causes)
        covered = sum(e["dur"] for e in causes)
        assert covered == sum(
            w.duration_us for w in attribution.windows
        )

    def test_body_stays_sorted_and_metadata_first(self):
        attribution = attribute_record(make_record())
        doc = document([lag_span(4_000, "b", 10), lag_span(1_000, "a", 10)],
                       name="w [interactive]")
        annotated = annotate_document(doc, attribution)
        events = annotated["traceEvents"]
        assert events[0]["ph"] == "M"
        body = [e for e in events if e["ph"] != "M"]
        keys = [(e["ts"], e.get("tid", 0)) for e in body]
        assert keys == sorted(keys)


class TestExtract:
    def test_windows_sorted_with_cause_totals(self):
        doc = document(
            [
                lag_span(500, "b", 200),
                lag_span(100, "a", 300),
                cause_span(100, 120, "park_wake", "a"),
                cause_span(220, 180, "at_speed", "a"),
            ]
        )
        windows = extract_windows(doc)
        assert [w.label for w in windows] == ["a", "b"]
        assert windows[0].causes == (("park_wake", 120), ("at_speed", 180))
        assert windows[1].causes == ()

    def test_duplicate_labels_attach_causes_by_containment(self):
        # The same gesture label repeats across a run; each cause span
        # must land only on the window whose time range contains it.
        doc = document(
            [
                lag_span(100, "a", 300),
                cause_span(100, 300, "at_speed", "a"),
                lag_span(900, "a", 100),
                cause_span(900, 100, "park_wake", "a"),
            ]
        )
        windows = extract_windows(doc)
        assert [w.causes for w in windows] == [
            (("at_speed", 300),),
            (("park_wake", 100),),
        ]

    def test_park_and_counter_events_are_ignored(self):
        doc = document(
            [
                lag_span(100, "a", 300),
                {"name": "parked: idle", "ph": "X", "ts": 0, "dur": 50,
                 "pid": PID_DEVICE, "tid": 3, "args": {}},
                {"name": "cpufreq_khz", "ph": "C", "ts": 0,
                 "pid": PID_DEVICE, "args": {"khz": 300000}},
            ]
        )
        assert len(extract_windows(doc)) == 1


class TestDiff:
    def base_doc(self, name="run A"):
        return document(
            [
                lag_span(100, "a", 300),
                cause_span(100, 300, "at_speed", "a"),
                lag_span(900, "b", 100),
                cause_span(900, 100, "slow_ramp", "b"),
            ],
            name=name,
        )

    def test_identical_documents_do_not_diverge(self):
        diff = diff_documents(self.base_doc(), copy.deepcopy(self.base_doc()))
        assert len(diff.aligned) == 2
        assert diff.diverging == ()
        assert diff.first_divergence is None
        assert "no causally-diverging windows" in render_diff(diff)

    def test_duration_change_diverges(self):
        other = self.base_doc("run B")
        other["traceEvents"][1]["dur"] = 350
        diff = diff_documents(self.base_doc(), other)
        assert len(diff.diverging) == 1
        first = diff.first_divergence
        assert first[0].label == "a"
        text = render_diff(diff)
        assert "first divergence: 'a'" in text
        assert "delta +50 us" in text

    def test_cause_change_diverges_even_at_same_duration(self):
        other = self.base_doc()
        other["traceEvents"][2]["name"] = "cause:park_wake"
        other["traceEvents"][2]["args"]["cause"] = "park_wake"
        diff = diff_documents(self.base_doc(), other)
        assert len(diff.diverging) == 1

    def test_unaligned_windows_reported(self):
        other = self.base_doc()
        del other["traceEvents"][3:]  # drop window 'b'
        diff = diff_documents(self.base_doc(), other)
        assert [w.label for w in diff.only_a] == ["b"]
        assert "only in A: 'b'" in render_diff(diff)

    def test_labels_come_from_process_name(self):
        diff = diff_documents(self.base_doc("run A"), self.base_doc("run B"))
        assert diff.label_a == "run A"
        assert diff.label_b == "run B"

    def test_diff_trace_files_roundtrip(self, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        path_a.write_text(json.dumps(self.base_doc()), encoding="utf-8")
        path_b.write_text(json.dumps(self.base_doc()), encoding="utf-8")
        assert diff_trace_files(path_a, path_b).diverging == ()

    def test_unreadable_file_raises_repro_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError):
            diff_trace_files(bad, bad)

    def test_non_trace_document_raises(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ReproError):
            diff_trace_files(path, path)

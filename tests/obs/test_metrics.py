"""Unit tests for the metrics registry."""

import json

from repro.obs.metrics import OBS_SCHEMA_VERSION, Histogram, MetricsRegistry


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap == {
            "count": 0, "sum": 0, "min": None, "max": None, "buckets": {}
        }

    def test_observations_land_in_power_of_four_buckets(self):
        histogram = Histogram()
        for value in (0, 1, 4, 5, 16, 100_000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 6
        assert snap["sum"] == 100_026
        assert snap["min"] == 0
        assert snap["max"] == 100_000
        assert snap["buckets"]["le_1"] == 2  # 0 and 1
        assert snap["buckets"]["le_4"] == 1
        assert snap["buckets"]["le_16"] == 2  # 5 and 16
        assert snap["buckets"]["le_262144"] == 1

    def test_overflow_bucket(self):
        histogram = Histogram()
        histogram.observe(4**16 + 1)
        assert histogram.snapshot()["buckets"] == {"inf": 1}


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 5)
        registry.inc("b")
        assert registry.counter_value("a") == 6
        assert registry.counter_value("b") == 1
        assert registry.counter_value("missing") == 0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1)
        registry.set_gauge("g", 9)
        assert registry.snapshot()["gauges"] == {"g": 9}

    def test_snapshot_is_pure_json_with_sorted_keys(self):
        registry = MetricsRegistry()
        registry.inc("z.second")
        registry.inc("a.first")
        registry.set_gauge("gauge", 3.5)
        registry.observe("hist", 7)
        snap = registry.snapshot()
        assert snap["schema_version"] == OBS_SCHEMA_VERSION
        assert list(snap["counters"]) == ["a.first", "z.second"]
        # round-trips through JSON unchanged
        assert json.loads(json.dumps(snap)) == snap

    def test_two_identical_runs_snapshot_identically(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("events", 100)
            registry.observe("lag", 42)
            registry.observe("lag", 43)
            registry.set_gauge("frames", 12)
            return registry.snapshot()

        assert build() == build()

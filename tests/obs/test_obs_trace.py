"""Unit tests for the Chrome trace-event collector and validator."""

import json

import pytest

from repro.obs.trace import (
    PID_DEVICE,
    THREAD_NAMES,
    TID_CPUFREQ,
    TID_FRAMES,
    TID_GESTURES,
    TID_GOVERNOR,
    TID_TIMERS,
    TraceCollector,
)
from repro.obs.validate import validate_document, validate_file


def _full_collector() -> TraceCollector:
    """A collector holding one event of every required family."""
    tracer = TraceCollector()
    tracer.instant("governor_start:interactive", 0, TID_GOVERNOR)
    tracer.instant("opp_transition", 100, TID_CPUFREQ, {"khz": 960_000})
    tracer.counter("cpufreq_khz", 100, {"khz": 960_000})
    tracer.complete("parked:idle", 200, 5_000, TID_TIMERS, {"ticks_elided": 3})
    tracer.instant("frame", 33_333, TID_FRAMES, {"frame_index": 1})
    tracer.complete("lag:tap:0", 40_000, 120_000, TID_GESTURES)
    return tracer


class TestTraceCollector:
    def test_events_sorted_by_timestamp_on_export(self):
        tracer = TraceCollector()
        tracer.instant("later", 500, TID_FRAMES)
        tracer.instant("earlier", 100, TID_GOVERNOR)
        document = _ts_only(tracer.to_chrome_trace())
        assert document == sorted(document)

    def test_metadata_declares_every_track(self):
        document = TraceCollector().to_chrome_trace("run")
        names = {
            event["tid"]: event["args"]["name"]
            for event in document["traceEvents"]
            if event["name"] == "thread_name"
        }
        assert names == THREAD_NAMES

    def test_process_name_carries_run_label(self):
        document = _full_collector().to_chrome_trace("persona=gamer [qoe]")
        process = next(
            event for event in document["traceEvents"]
            if event["name"] == "process_name"
        )
        assert process["args"]["name"] == "persona=gamer [qoe]"
        assert process["pid"] == PID_DEVICE

    def test_write_produces_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        _full_collector().write(path, "label")
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["otherData"]["time_base"] == "simulation_microseconds"
        assert validate_document(document) == []


def _ts_only(document):
    return [
        event["ts"] for event in document["traceEvents"] if event["ph"] != "M"
    ]


class TestValidator:
    def test_valid_document_has_no_problems(self):
        assert validate_document(_full_collector().to_chrome_trace()) == []

    def test_empty_trace_rejected(self):
        assert validate_document({"traceEvents": []})

    def test_non_object_rejected(self):
        assert validate_document([1, 2])

    def test_missing_family_reported(self):
        tracer = TraceCollector()
        tracer.instant("governor_start:x", 0, TID_GOVERNOR)
        problems = validate_document(tracer.to_chrome_trace())
        assert any("frames" in problem for problem in problems)
        assert any("cpufreq" in problem for problem in problems)

    def test_negative_timestamp_reported(self):
        document = _full_collector().to_chrome_trace()
        document["traceEvents"].append(
            {"name": "bad", "ph": "i", "ts": -1, "pid": 1, "tid": 1, "s": "t"}
        )
        problems = validate_document(document)
        assert any("non-negative" in problem for problem in problems)

    def test_unknown_phase_reported(self):
        document = _full_collector().to_chrome_trace()
        document["traceEvents"].append(
            {"name": "bad", "ph": "Q", "ts": 0, "pid": 1, "tid": 1}
        )
        assert any(
            "unknown phase" in problem
            for problem in validate_document(document)
        )

    def test_unreadable_file_is_a_problem(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert validate_file(missing)
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json", encoding="utf-8")
        assert validate_file(garbled)

    def test_cli_main_exit_codes(self, tmp_path, capsys):
        from repro.obs.validate import main

        good = tmp_path / "good.json"
        _full_collector().write(good)
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("[]", encoding="utf-8")
        assert main([str(bad)]) == 1
        assert main([]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # diagnostics are stderr-only
        assert "INVALID" in captured.err

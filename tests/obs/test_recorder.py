"""Unit tests for the divergence flight recorder."""

from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    RecordedEvent,
    divergence_report,
    first_divergence,
)


def _fill(recorder: FlightRecorder, labels: list[str], category: str = "cpufreq"):
    for index, label in enumerate(labels):
        recorder.record(ts=index * 10, category=category, label=label)


class TestFlightRecorder:
    def test_records_in_order_with_sequence_numbers(self):
        recorder = FlightRecorder(capacity=8)
        _fill(recorder, ["a", "b", "c"])
        events = recorder.events()
        assert [event.seq for event in events] == [0, 1, 2]
        assert [event.label for event in events] == ["a", "b", "c"]
        assert recorder.total_recorded == 3
        assert recorder.dropped == 0

    def test_ring_wraps_and_counts_drops(self):
        recorder = FlightRecorder(capacity=3)
        _fill(recorder, ["a", "b", "c", "d", "e"])
        events = recorder.events()
        assert [event.label for event in events] == ["c", "d", "e"]
        assert [event.seq for event in events] == [2, 3, 4]
        assert recorder.total_recorded == 5
        assert recorder.dropped == 2

    def test_default_capacity_is_bounded(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_describe_names_the_event(self):
        event = RecordedEvent(seq=7, ts=1234, category="frame", label="composed=3")
        assert event.describe() == "#7 t=1234us frame: composed=3"


class TestFirstDivergence:
    def _recorder(self, labels, capacity=16):
        recorder = FlightRecorder(capacity=capacity)
        _fill(recorder, labels)
        return recorder

    def test_identical_streams_have_no_divergence(self):
        a = self._recorder(["x", "y", "z"])
        b = self._recorder(["x", "y", "z"])
        assert first_divergence(a, b) is None

    def test_finds_first_differing_event(self):
        a = self._recorder(["x", "y", "z"])
        b = self._recorder(["x", "DIFFERENT", "z"])
        pair = first_divergence(a, b)
        assert pair is not None
        event_a, event_b = pair
        assert event_a.label == "y"
        assert event_b.label == "DIFFERENT"
        assert event_a.seq == event_b.seq == 1

    def test_aligns_on_seq_when_one_ring_dropped_earlier_events(self):
        # a kept everything; b's small ring dropped its first two events.
        a = self._recorder(["p", "q", "r", "s", "t"])
        b = self._recorder(["p", "q", "r", "s", "t"], capacity=3)
        assert b.dropped == 2
        # comparison starts at the max first-seq (2), so they still agree
        assert first_divergence(a, b) is None

    def test_length_mismatch_reports_the_extra_event(self):
        a = self._recorder(["x", "y", "z"])
        b = self._recorder(["x", "y"])
        pair = first_divergence(a, b)
        assert pair is not None
        extra, missing = pair
        assert missing is None
        assert extra.label == "z"

    def test_timestamp_difference_is_a_divergence(self):
        a = FlightRecorder()
        b = FlightRecorder()
        a.record(ts=100, category="frame", label="composed=0")
        b.record(ts=105, category="frame", label="composed=0")
        assert first_divergence(a, b) is not None


class TestDivergenceReport:
    def test_report_names_first_diverging_event(self):
        a = FlightRecorder()
        b = FlightRecorder()
        for recorder in (a, b):
            recorder.record(ts=0, category="governor", label="start")
            recorder.record(ts=50, category="cpufreq", label="opp=600000")
        a.record(ts=90, category="cpufreq", label="opp=960000")
        b.record(ts=90, category="cpufreq", label="opp=1200000")
        report = divergence_report(a, b, "fastpath", "slowpath")
        assert "FIRST DIVERGING EVENT" in report
        assert "opp=960000" in report
        assert "opp=1200000" in report
        assert "fastpath" in report and "slowpath" in report
        # the agreeing prefix is shown as context
        assert "opp=600000" in report

    def test_report_on_identical_streams_says_so(self):
        a = FlightRecorder()
        b = FlightRecorder()
        a.record(ts=0, category="governor", label="start")
        b.record(ts=0, category="governor", label="start")
        report = divergence_report(a, b, "A", "B")
        assert "no divergence" in report.lower()

    def test_report_notes_ring_drops(self):
        a = FlightRecorder(capacity=2)
        b = FlightRecorder(capacity=2)
        for recorder in (a, b):
            _fill(recorder, ["a", "b", "c", "d"])
        report = divergence_report(a, b, "A", "B")
        assert "dropped" in report.lower()

"""Unit tests for the observability session lifecycle and emit fan-out."""

import pytest

from repro.obs import session as obs_session
from repro.obs.session import ObsError, ObsSession


@pytest.fixture(autouse=True)
def _no_leftover_session():
    """No test may leak an installed session into its neighbours."""
    obs_session.uninstall()
    yield
    obs_session.uninstall()


class TestLifecycle:
    def test_nothing_active_by_default(self):
        assert obs_session.active() is None

    def test_install_makes_session_active(self):
        session = ObsSession.for_run()
        obs_session.install(session)
        assert obs_session.active() is session

    def test_double_install_is_an_error(self):
        obs_session.install(ObsSession.for_run())
        with pytest.raises(ObsError):
            obs_session.install(ObsSession.for_run())

    def test_uninstall_is_idempotent(self):
        obs_session.uninstall()
        obs_session.uninstall()
        assert obs_session.active() is None

    def test_observed_context_manager_installs_and_uninstalls(self):
        session = ObsSession.for_tracing()
        with obs_session.observed(session) as seen:
            assert seen is session
            assert obs_session.active() is session
        assert obs_session.active() is None

    def test_observed_uninstalls_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs_session.observed(ObsSession.for_run()):
                raise RuntimeError("boom")
        assert obs_session.active() is None


class TestSessionShapes:
    def test_for_run_has_no_tracer(self):
        session = ObsSession.for_run()
        assert session.tracer is None
        assert session.metrics is not None
        assert session.recorder is not None

    def test_for_tracing_has_all_backends(self):
        session = ObsSession.for_tracing()
        assert session.tracer is not None
        assert session.metrics is not None
        assert session.recorder is not None


class TestEmitFanOut:
    """Each emit feeds the right subset of backends."""

    def test_freq_transition_feeds_all_three(self):
        session = ObsSession.for_tracing()
        session.freq_transition(1000, 960_000)
        assert session.metrics.counter_value("cpufreq.transitions") == 1
        assert session.tracer.event_count == 2  # counter track + instant
        [event] = session.recorder.events()
        assert event.category == "cpufreq"
        assert event.label == "opp=960000"

    def test_timer_parking_never_reaches_the_recorder(self):
        """Parking is mode-dependent; the recorder only holds events the
        fast/slow paths must agree on."""
        session = ObsSession.for_tracing()
        session.timer_parked(100, "ondemand", "idle")
        session.timer_unparked(500, "ondemand", "idle", parked_since=100, elided=3)
        assert session.recorder.events() == []
        assert session.metrics.counter_value("timer.parks") == 1
        assert session.metrics.counter_value("timer.parks.idle") == 1
        assert session.metrics.counter_value("timer.ticks_elided") == 3

    def test_lag_window_records_close_timestamp(self):
        session = ObsSession.for_run()
        session.lag_window_closed(
            begin_ts=1000, duration_us=250, label="tap:0",
            category="tap", threshold_us=100,
        )
        [event] = session.recorder.events()
        assert event.ts == 1250
        assert event.label == "tap:0 dur=250"
        assert session.metrics.counter_value("match.lags_over_threshold") == 1

    def test_under_threshold_lag_not_counted_over(self):
        session = ObsSession.for_run()
        session.lag_window_closed(
            begin_ts=0, duration_us=50, label="tap:0",
            category="tap", threshold_us=100,
        )
        assert session.metrics.counter_value("match.lags_over_threshold") == 0

    def test_emits_are_safe_with_backends_absent(self):
        """An all-None session accepts the full vocabulary silently."""
        session = ObsSession()
        session.governor_started(0, "interactive")
        session.input_boost(1, "interactive", 1_200_000)
        session.timer_parked(2, "interactive", "busy")
        session.timer_unparked(3, "interactive", "busy", 2, 0)
        session.freq_transition(4, 600_000)
        session.frame_composed(5, 0)
        session.gesture_window_opened(6, "tap:0", 0)
        session.lag_window_closed(6, 10, "tap:0", "tap", 100)
        session.segments_streamed(3, 9)


class TestHarvest:
    class _FakeEngine:
        events_fired = 42
        heap_compactions = 2

    class _FakeGovernor:
        samples_taken = 17

    def test_harvest_folds_engine_and_governor_stats(self):
        session = ObsSession.for_tracing()
        session.freq_transition(0, 600_000)
        row = session.harvest_run(self._FakeEngine(), governor=self._FakeGovernor())
        assert row["counters"]["engine.events_dispatched"] == 42
        assert row["counters"]["engine.heap_compactions"] == 2
        assert row["counters"]["cpufreq.transitions"] == 1
        assert row["gauges"]["governor.samples_taken"] == 17
        assert row["trace_events"] == 2
        assert row["flight_recorder"]["recorded"] == 1
        assert row["flight_recorder"]["dropped"] == 0

    def test_harvest_without_tracer_omits_trace_count(self):
        session = ObsSession.for_run()
        row = session.harvest_run(self._FakeEngine())
        assert "trace_events" not in row
        assert "flight_recorder" in row
        assert "governor.samples_taken" not in row["gauges"]

"""Validator tests for counter samples and attribution cause spans."""

from repro.obs.trace import TID_ATTRIBUTION, TID_GESTURES, TraceCollector
from repro.obs.validate import main, validate_document
from tests.obs.test_obs_trace import _full_collector


def _annotated_collector() -> TraceCollector:
    tracer = _full_collector()
    tracer.complete(
        "cause:park_wake", 40_000, 60_000, TID_ATTRIBUTION,
        {"lag": "tap:0", "cause": "park_wake", "window_penalty_us": 0},
    )
    return tracer


class TestCounterValidation:
    def test_valid_counter_accepted(self):
        assert validate_document(_full_collector().to_chrome_trace()) == []

    def test_counter_without_args_rejected(self):
        document = _full_collector().to_chrome_trace()
        document["traceEvents"].append(
            {"name": "empty", "ph": "C", "ts": 0, "pid": 1, "args": {}}
        )
        assert any(
            "counter args must be a non-empty object" in problem
            for problem in validate_document(document)
        )

    def test_counter_with_non_numeric_series_rejected(self):
        document = _full_collector().to_chrome_trace()
        document["traceEvents"].append(
            {"name": "bad", "ph": "C", "ts": 0, "pid": 1,
             "args": {"khz": "fast"}}
        )
        assert any(
            "must map a string to a number" in problem
            for problem in validate_document(document)
        )

    def test_boolean_series_value_rejected(self):
        # bool is an int subclass; the validator must not be fooled.
        document = _full_collector().to_chrome_trace()
        document["traceEvents"].append(
            {"name": "bad", "ph": "C", "ts": 0, "pid": 1,
             "args": {"flag": True}}
        )
        assert any(
            "must map a string to a number" in problem
            for problem in validate_document(document)
        )


class TestCauseSpanValidation:
    def test_valid_cause_span_accepted(self):
        assert validate_document(_annotated_collector().to_chrome_trace()) == []

    def test_unknown_cause_rejected(self):
        tracer = _full_collector()
        tracer.complete(
            "cause:gremlins", 0, 10, TID_ATTRIBUTION, {"lag": "tap:0"}
        )
        assert any(
            "unknown attribution cause 'gremlins'" in problem
            for problem in validate_document(tracer.to_chrome_trace())
        )

    def test_attribution_span_must_be_named_cause(self):
        tracer = _full_collector()
        tracer.complete("not-a-cause", 0, 10, TID_ATTRIBUTION)
        assert any(
            "must be named cause:<cause>" in problem
            for problem in validate_document(tracer.to_chrome_trace())
        )

    def test_cause_span_must_anchor_a_lag_label(self):
        tracer = _full_collector()
        tracer.complete("cause:at_speed", 0, 10, TID_ATTRIBUTION, {"x": 1})
        assert any(
            "must carry the 'lag' window label" in problem
            for problem in validate_document(tracer.to_chrome_trace())
        )

    def test_cause_prefix_on_other_tracks_not_checked(self):
        # Only the attribution track carries the cause-span contract.
        tracer = _full_collector()
        tracer.complete("cause:whatever", 0, 10, TID_GESTURES)
        assert validate_document(tracer.to_chrome_trace()) == []


class TestMainSummaryLine:
    def test_failure_ends_with_one_line_error(self, tmp_path, capsys):
        tracer = _full_collector()
        tracer.complete("cause:gremlins", 0, 10, TID_ATTRIBUTION, {"lag": "x"})
        bad = tmp_path / "bad.json"
        tracer.write(bad)
        assert main([str(bad)]) == 1
        err_lines = capsys.readouterr().err.strip().splitlines()
        assert err_lines[-1].startswith(f"repro-qoe: error: {bad}: ")
        assert "structural problem(s); first:" in err_lines[-1]

    def test_success_is_quiet_on_stdout(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        _annotated_collector().write(good)
        assert main([str(good)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "OK" in captured.err

"""Unit and property tests for the oracle builder and BusyTimeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.analysis.lagprofile import LagMeasurement, LagProfile
from repro.device.frequencies import snapdragon_8074_table
from repro.device.power import PowerModel
from repro.oracle.builder import BusyTimeline, build_oracle


class TestBusyTimeline:
    def test_total(self):
        timeline = BusyTimeline([(0, 100), (200, 350)])
        assert timeline.total_busy_us == 250

    def test_window_query(self):
        timeline = BusyTimeline([(0, 100), (200, 350)])
        assert timeline.busy_in(0, 400) == 250
        assert timeline.busy_in(50, 250) == 100
        assert timeline.busy_in(100, 200) == 0
        assert timeline.busy_in(210, 220) == 10

    def test_empty_window(self):
        timeline = BusyTimeline([(0, 100)])
        assert timeline.busy_in(50, 50) == 0
        assert timeline.busy_in(80, 20) == 0

    def test_touching_intervals_allowed(self):
        timeline = BusyTimeline([(0, 100), (100, 200)])
        assert timeline.busy_in(0, 200) == 200

    def test_overlapping_rejected(self):
        with pytest.raises(ReproError):
            BusyTimeline([(0, 100), (50, 150)])

    def test_inverted_rejected(self):
        with pytest.raises(ReproError):
            BusyTimeline([(100, 50)])

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 50)), max_size=15
        ),
        st.integers(0, 600),
        st.integers(0, 600),
    )
    def test_matches_naive_computation(self, raw, a, b):
        # Build disjoint intervals from (gap, length) pairs.
        intervals = []
        cursor = 0
        for gap, length in raw:
            start = cursor + gap
            intervals.append((start, start + length))
            cursor = start + length
        timeline = BusyTimeline(intervals)
        lo, hi = min(a, b), max(a, b)
        naive = sum(
            max(0, min(end, hi) - max(start, lo)) for start, end in intervals
        )
        assert timeline.busy_in(lo, hi) == naive


def make_fixed_inputs(lag_work_cycles, duration_us=60_000_000):
    """Synthesize consistent fixed-run inputs for every OPP.

    Lag durations follow duration = work / frequency; busy timelines put
    that work right after each lag's begin time.
    """
    table = snapdragon_8074_table()
    profiles, busy, energy = {}, {}, {}
    model = PowerModel()
    for point in table.points:
        lags = []
        intervals = []
        for index, work in enumerate(lag_work_cycles):
            begin = (index + 1) * 10_000_000
            duration = int(work / (point.freq_khz / 1e3))
            lags.append(
                LagMeasurement(
                    lag_index=index,
                    gesture_index=index,
                    label=f"lag{index}",
                    category="simple_frequent",
                    begin_time_us=begin,
                    end_frame=0,
                    duration_us=duration,
                    threshold_us=1_000_000,
                )
            )
            intervals.append((begin, begin + duration))
        profiles[point.freq_khz] = LagProfile("w", tuple(lags))
        busy[point.freq_khz] = BusyTimeline(intervals)
        busy_total = sum(e - s for s, e in intervals)
        dynamic_w = model.active_power(point.freq_khz, point.volts) - model.idle_power()
        energy[point.freq_khz] = busy_total * dynamic_w / 1e6
    return profiles, busy, energy, table, model


def test_oracle_picks_lowest_frequency_meeting_deadline():
    profiles, busy, energy, table, model = make_fixed_inputs([500e6])
    oracle = build_oracle(profiles, busy, energy, 60_000_000, table, model)
    lag = oracle.lags[0]
    fastest_duration = profiles[table.max_khz].lags[0].duration_us
    deadline = max(
        int(fastest_duration * 1.1), fastest_duration + 34_000
    )
    assert lag.duration_us <= deadline
    # A lower OPP would miss the deadline.
    lower = table.step_down(lag.chosen_khz)
    if lower != lag.chosen_khz:
        assert profiles[lower].lags[0].duration_us > deadline


def test_oracle_base_is_lowest_energy_fixed_run():
    profiles, busy, energy, table, model = make_fixed_inputs([500e6])
    oracle = build_oracle(profiles, busy, energy, 60_000_000, table, model)
    assert oracle.base_khz == min(energy, key=energy.get)


def test_oracle_profile_covers_run_and_contains_lags():
    profiles, busy, energy, table, model = make_fixed_inputs([500e6, 2e9])
    oracle = build_oracle(profiles, busy, energy, 60_000_000, table, model)
    assert oracle.profile.start_us == 0
    assert oracle.profile.end_us == 60_000_000
    for lag in oracle.lags:
        assert oracle.profile.frequency_at(lag.begin_us + 1) == lag.chosen_khz


def test_oracle_never_irritates_when_fastest_meets_threshold():
    profiles, busy, energy, table, model = make_fixed_inputs([500e6, 1e9])
    oracle = build_oracle(profiles, busy, energy, 60_000_000, table, model)
    assert oracle.irritation().total_us == 0


def test_oracle_energy_between_extreme_bounds():
    profiles, busy, energy, table, model = make_fixed_inputs([500e6, 1e9, 3e9])
    oracle = build_oracle(profiles, busy, energy, 60_000_000, table, model)
    assert oracle.energy_j > 0
    # Never worse than running everything at max frequency.
    assert oracle.energy_j <= energy[table.max_khz] * 1.01


def test_missing_frequency_rejected():
    profiles, busy, energy, table, model = make_fixed_inputs([500e6])
    del profiles[table.min_khz]
    with pytest.raises(ReproError):
        build_oracle(profiles, busy, energy, 60_000_000, table, model)


def test_mismatched_lag_counts_rejected():
    profiles, busy, energy, table, model = make_fixed_inputs([500e6])
    broken = LagProfile("w", ())
    profiles[table.min_khz] = broken
    with pytest.raises(ReproError):
        build_oracle(profiles, busy, energy, 60_000_000, table, model)

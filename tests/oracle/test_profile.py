"""Unit tests for frequency profiles."""

import pytest

from repro.core.errors import ReproError
from repro.oracle.profile import FrequencyProfile, ProfileSegment


def make_profile():
    return FrequencyProfile(
        [
            ProfileSegment(0, 1_000_000, 300_000),
            ProfileSegment(1_000_000, 3_000_000, 960_000),
            ProfileSegment(3_000_000, 4_000_000, 2_150_400),
        ]
    )


def test_empty_rejected():
    with pytest.raises(ReproError):
        FrequencyProfile([])


def test_gap_rejected():
    with pytest.raises(ReproError):
        FrequencyProfile(
            [ProfileSegment(0, 10, 1), ProfileSegment(20, 30, 2)]
        )


def test_frequency_at():
    profile = make_profile()
    assert profile.frequency_at(0) == 300_000
    assert profile.frequency_at(999_999) == 300_000
    assert profile.frequency_at(1_000_000) == 960_000
    assert profile.frequency_at(4_000_000) == 2_150_400


def test_frequency_outside_range_rejected():
    with pytest.raises(ReproError):
        make_profile().frequency_at(5_000_000)


def test_zero_length_segments_dropped():
    profile = FrequencyProfile(
        [ProfileSegment(0, 0, 1), ProfileSegment(0, 10, 2)]
    )
    assert len(profile.segments) == 1


def test_from_transitions():
    profile = FrequencyProfile.from_transitions(
        [(0, 300_000), (500, 960_000)], end_us=1_000
    )
    assert profile.frequency_at(250) == 300_000
    assert profile.frequency_at(750) == 960_000
    assert profile.end_us == 1_000


def test_from_transitions_empty_rejected():
    with pytest.raises(ReproError):
        FrequencyProfile.from_transitions([], end_us=100)


def test_window_clips_segments():
    profile = make_profile()
    window = profile.window(500_000, 3_500_000)
    assert [(s.start_us, s.end_us, s.freq_khz) for s in window] == [
        (500_000, 1_000_000, 300_000),
        (1_000_000, 3_000_000, 960_000),
        (3_000_000, 3_500_000, 2_150_400),
    ]


def test_series_sampling():
    profile = make_profile()
    xs, ys = profile.series(step_us=500_000)
    assert xs[0] == 0.0
    assert ys[0] == pytest.approx(0.3)
    assert ys[-1] == pytest.approx(2.1504)

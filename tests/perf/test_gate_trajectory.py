"""Tests for the perf regression gate and the BENCH_replay.json trajectory."""

import json

import pytest

from repro.core.errors import ReproError
from repro.perf.gate import (
    DEFAULT_TOLERANCE,
    check_regression,
    load_baseline,
    write_baseline,
)
from repro.perf.harness import BenchResult
from repro.perf.trajectory import append_entry, load_trajectory


def result(name, throughput):
    # events/s-style result: wall 1s, `throughput` events.
    return BenchResult(name=name, wall_s=1.0, sim_us=0, events=int(throughput))


def test_gate_passes_within_tolerance():
    baseline = {"engine_events": 100_000.0}
    assert check_regression([result("engine_events", 40_000)], baseline) == []


def test_gate_fails_below_tolerance_band():
    baseline = {"engine_events": 100_000.0}
    failures = check_regression(
        [result("engine_events", 30_000)], baseline, tolerance=0.35
    )
    assert len(failures) == 1
    assert "engine_events" in failures[0]


def test_gate_reports_missing_benchmark():
    failures = check_regression([], {"engine_churn": 10_000.0})
    assert failures and "did not run" in failures[0]


def test_gate_tolerates_known_benchmark_not_in_suite():
    baseline = {"macro_daylong": 10_000.0, "engine_events": 100.0}
    failures = check_regression(
        [result("engine_events", 100)],
        baseline,
        known_benchmarks={"macro_daylong", "engine_events"},
    )
    assert failures == []
    # A stale (renamed) baseline entry still fails even with known set.
    failures = check_regression(
        [result("engine_events", 100)],
        baseline | {"engine_evnts_old": 5.0},
        known_benchmarks={"macro_daylong", "engine_events"},
    )
    assert len(failures) == 1 and "engine_evnts_old" in failures[0]


def test_gate_skips_benchmarks_without_baseline():
    assert check_regression([result("brand_new", 1.0)], {"other": 10.0}) == [
        "other: baseline present but benchmark did not run"
    ]


def test_gate_rejects_bad_tolerance():
    with pytest.raises(ReproError):
        check_regression([], {}, tolerance=0.0)
    with pytest.raises(ReproError):
        check_regression([], {}, tolerance=1.5)


def test_default_tolerance_is_wide():
    assert 0.1 <= DEFAULT_TOLERANCE <= 0.6


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "perf_baseline.json"
    write_baseline(path, [result("engine_events", 123_456.7)])
    baseline = load_baseline(path)
    # The helper floors the throughput to whole events; the round-trip
    # itself must be lossless.
    assert baseline == {"engine_events": pytest.approx(123_456.0, abs=0.01)}


def test_partial_update_preserves_other_floors(tmp_path):
    """A micro-only --update-baseline must not delete the macro floors."""
    path = tmp_path / "perf_baseline.json"
    write_baseline(
        path,
        [result("engine_events", 100.0), result("macro_daylong", 9_999.0)],
    )
    write_baseline(path, [result("engine_events", 200.0)])
    baseline = load_baseline(path)
    assert baseline["engine_events"] == pytest.approx(200.0)
    assert baseline["macro_daylong"] == pytest.approx(9_999.0)


def test_load_baseline_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{}", encoding="utf-8")
    with pytest.raises(ReproError):
        load_baseline(path)
    with pytest.raises(ReproError):
        load_baseline(tmp_path / "missing.json")


def test_trajectory_appends_entries(tmp_path):
    path = tmp_path / "BENCH_replay.json"
    append_entry(path, [result("engine_events", 10.0)], label="first")
    append_entry(path, [result("engine_events", 20.0)], label="second")
    document = load_trajectory(path)
    assert document["schema"] == 1
    assert [entry["label"] for entry in document["entries"]] == [
        "first",
        "second",
    ]
    recorded = document["entries"][-1]["results"]["engine_events"]
    assert recorded["events_per_s"] == pytest.approx(20.0)
    # Entries carry provenance for cross-machine comparisons.
    assert document["entries"][0]["python"]
    assert document["entries"][0]["recorded_at"].endswith("Z")


def test_trajectory_rejects_malformed_file(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("[1, 2, 3]", encoding="utf-8")
    with pytest.raises(ReproError):
        load_trajectory(path)


def test_committed_trajectory_and_baseline_are_valid():
    """The files committed at the repo root must parse and stay coherent."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    document = load_trajectory(root / "BENCH_replay.json")
    assert document["entries"], "BENCH_replay.json must record the trajectory"
    baseline = load_baseline(root / "benchmarks" / "perf_baseline.json")
    assert "engine_events" in baseline
    assert "macro_study" in baseline
    # The recorded fast-path entry must beat the seed entry by the
    # tentpole's headline factor on the macro replay benchmarks.
    macro_entries = [
        entry
        for entry in document["entries"]
        if "macro_study" in entry["results"]
        and "macro_daylong" in entry["results"]
    ]
    assert len(macro_entries) >= 2, "need seed + fast-path macro entries"
    seed = macro_entries[0]["results"]
    current = macro_entries[-1]["results"]
    seed_thr = (
        seed["macro_study"]["sim_us"] + seed["macro_daylong"]["sim_us"]
    ) / (seed["macro_study"]["wall_s"] + seed["macro_daylong"]["wall_s"])
    current_thr = (
        current["macro_study"]["sim_us"] + current["macro_daylong"]["sim_us"]
    ) / (
        current["macro_study"]["wall_s"] + current["macro_daylong"]["wall_s"]
    )
    assert current_thr >= 3.0 * seed_thr

"""Tests for the perf harness: workloads are deterministic, results sane."""

import pytest

from repro.core.errors import ReproError
from repro.perf import workloads
from repro.perf.harness import (
    MACRO_BENCHES,
    MICRO_BENCHES,
    BenchResult,
    render_results,
    run_suite,
    suite_names,
)


def test_engine_events_is_deterministic():
    first = workloads.run_engine_events(n_events=5_000)
    second = workloads.run_engine_events(n_events=5_000)
    # In-flight chain events still fire after the quota is reached, so the
    # count may exceed n_events by up to the chain count — but every run
    # executes the identical event sequence.
    assert first.events_fired == second.events_fired
    assert first.events_fired >= 5_000
    assert first.now == second.now


def test_engine_periodic_fires_expected_count():
    engine = workloads.run_engine_periodic(timers=4, sim_us=10_000)
    expected = sum(10_000 // (53 + 13 * index) for index in range(4))
    assert engine.events_fired == expected


def test_engine_churn_completes_with_bounded_heap():
    engine = workloads.run_engine_churn(rounds=20, batch=128)
    assert len(engine._queue) < 2 * 128 + 64


def test_scheduler_chunks_runs_all_chains():
    engine = workloads.run_scheduler_chunks(chains=4, chain_cycles=60e6)
    assert engine.events_fired > 0
    assert engine.pending == 0


def test_policy_queries_checksum_stable():
    assert workloads.run_policy_queries(
        transitions=500, queries=500
    ) == workloads.run_policy_queries(transitions=500, queries=500)


def test_governor_sim_deterministic_events():
    first = workloads.run_governor_sim(sim_s=5)
    second = workloads.run_governor_sim(sim_s=5)
    assert first.events_fired == second.events_fired


def test_run_suite_micro_produces_all_results(tmp_path):
    results = run_suite("micro", repeats=1)
    assert [result.name for result in results] == list(MICRO_BENCHES)
    for result in results:
        assert result.wall_s > 0
        assert result.throughput() > 0


def test_run_suite_rejects_unknown_suite():
    with pytest.raises(ReproError):
        run_suite("warp-speed")


def test_suite_names_cover_micro_and_macro():
    names = suite_names()
    assert "micro" in names and "macro" in names and "all" in names
    assert set(MACRO_BENCHES) == {"macro_study", "macro_daylong",
                                  "demand_trace"}


def test_render_results_is_tabular():
    results = [
        BenchResult(name="engine_events", wall_s=0.5, sim_us=1_000_000,
                    events=10_000),
        BenchResult(name="macro_study", wall_s=1.0, sim_us=2_000_000,
                    events=0, metrics={"interactive": 2_000_000.0}),
    ]
    text = render_results(results)
    lines = text.splitlines()
    assert lines[0].startswith("benchmark")
    assert any("engine_events" in line for line in lines)
    assert any("interactive" in line for line in lines)


def test_profile_hook_writes_stats(tmp_path):
    profile_path = tmp_path / "perf.prof"
    run_suite("micro", repeats=1, profile_path=str(profile_path))
    assert profile_path.exists() and profile_path.stat().st_size > 0

    import pstats

    stats = pstats.Stats(str(profile_path))
    assert stats.total_calls > 0

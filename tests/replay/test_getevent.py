"""Unit and property tests for the getevent codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import events as ev
from repro.core.errors import ReplayError
from repro.replay.getevent import format_event, format_trace, parse_line, parse_trace

events = st.builds(
    ev.InputEvent,
    timestamp=st.integers(0, 10**12),
    device=st.sampled_from(["/dev/input/event1", "/dev/input/event2"]),
    type=st.sampled_from([ev.EV_SYN, ev.EV_KEY, ev.EV_ABS]),
    code=st.integers(0, 0xFFFF),
    value=st.integers(0, 0xFFFFFFFF),
)


def test_format_matches_paper_figure5_shape():
    event = ev.InputEvent(
        0, "/dev/input/event1", ev.EV_ABS, ev.ABS_MT_TRACKING_ID, 3
    )
    assert (
        format_event(event, with_timestamp=False)
        == "/dev/input/event1: 0003 0039 00000003"
    )


def test_release_formats_as_ffffffff():
    event = ev.InputEvent(
        0,
        "/dev/input/event1",
        ev.EV_ABS,
        ev.ABS_MT_TRACKING_ID,
        ev.TRACKING_ID_NONE,
    )
    assert format_event(event, with_timestamp=False).endswith("ffffffff")


def test_timed_format_parses_back():
    event = ev.InputEvent(
        12_345_678, "/dev/input/event1", ev.EV_ABS, ev.ABS_MT_POSITION_X, 0x16B
    )
    parsed = parse_line(format_event(event))
    assert parsed == event


def test_untimed_line_parses_with_zero_timestamp():
    parsed = parse_line("/dev/input/event1: 0003 0035 0000016b")
    assert parsed.timestamp == 0
    assert parsed.code == ev.ABS_MT_POSITION_X
    assert parsed.value == 0x16B


def test_garbage_line_rejected():
    with pytest.raises(ReplayError):
        parse_line("hello world")


def test_trace_skips_comments_and_blanks():
    text = (
        "# recorded on test device\n"
        "\n"
        "/dev/input/event1: 0003 0039 00000003\n"
    )
    assert len(parse_trace(text)) == 1


def test_empty_trace_formats_empty():
    assert format_trace([]) == ""


@given(st.lists(events, max_size=20))
def test_roundtrip_preserves_everything(event_list):
    # Sort to satisfy trace ordering downstream; the codec itself is
    # order-agnostic.
    text = format_trace(event_list)
    assert parse_trace(text) == event_list

"""Recorder + replay agent: the paper's core repeatability property."""

import pytest

from repro.core.errors import ReplayError
from repro.core.geometry import Point
from repro.core.simtime import seconds
from repro.device.device import Device
from repro.replay import GeteventRecorder, ReplayAgent
from repro.replay.trace import EventTrace


def record_two_taps():
    device = Device()
    recorder = GeteventRecorder(device.input_subsystem)
    recorder.start()
    device.touchscreen.schedule_tap(seconds(1), Point(30, 40))
    device.touchscreen.schedule_tap(seconds(2), Point(50, 60))
    device.run_for(seconds(3))
    return recorder.stop()


def test_recorder_captures_all_packets():
    trace = record_two_taps()
    assert trace.touch_down_times() == [seconds(1), seconds(2)]
    # Each tap: 5 ABS + SYN on down, 1 ABS + SYN on up = 8 events.
    assert len(trace) == 16


def test_recorder_stop_detaches():
    device = Device()
    recorder = GeteventRecorder(device.input_subsystem)
    recorder.start()
    trace = recorder.stop()
    device.touchscreen.schedule_tap(seconds(1), Point(30, 40))
    device.run_for(seconds(2))
    assert len(trace) == 0


def test_replay_reproduces_exact_timing():
    trace = record_two_taps()
    device = Device()
    seen = []
    device.input_subsystem.node("/dev/input/event1").add_observer(
        lambda e: seen.append(e)
    )
    agent = ReplayAgent(device.engine, device.input_subsystem)
    last = agent.schedule(trace)
    device.run_for(seconds(3))
    assert agent.events_injected == len(trace)
    assert [e.timestamp for e in seen] == [e.timestamp for e in trace]
    assert last == trace.events[-1].timestamp


def test_replay_with_offset():
    trace = record_two_taps()
    device = Device()
    seen = []
    device.input_subsystem.node("/dev/input/event1").add_observer(seen.append)
    agent = ReplayAgent(device.engine, device.input_subsystem)
    agent.schedule(trace, start_offset_us=seconds(10))
    device.run_for(seconds(14))
    assert seen[0].timestamp == trace.events[0].timestamp + seconds(10)


def test_replay_rejects_negative_offset():
    agent = ReplayAgent(Device().engine, Device().input_subsystem)
    with pytest.raises(ReplayError):
        agent.schedule(EventTrace(), start_offset_us=-1)


def test_recorded_then_replayed_trace_is_identical_when_rerecorded():
    """Record a replay of a recording: byte-identical getevent dumps."""
    original = record_two_taps()
    device = Device()
    recorder = GeteventRecorder(device.input_subsystem)
    recorder.start()
    ReplayAgent(device.engine, device.input_subsystem).schedule(original)
    device.run_for(seconds(3))
    rerecorded = recorder.stop()
    assert rerecorded.dumps() == original.dumps()

"""Unit tests for event traces."""

import pytest

from repro.core import events as ev
from repro.core.errors import ReplayError
from repro.replay.trace import EventTrace

PATH = "/dev/input/event1"


def make_event(timestamp, code=ev.ABS_MT_POSITION_X, value=1):
    return ev.InputEvent(timestamp, PATH, ev.EV_ABS, code, value)


def down(timestamp, tracking=5):
    return ev.InputEvent(timestamp, PATH, ev.EV_ABS, ev.ABS_MT_TRACKING_ID, tracking)


def up(timestamp):
    return ev.InputEvent(
        timestamp, PATH, ev.EV_ABS, ev.ABS_MT_TRACKING_ID, ev.TRACKING_ID_NONE
    )


def test_out_of_order_rejected():
    with pytest.raises(ReplayError):
        EventTrace([make_event(100), make_event(50)])


def test_append_monotonic():
    trace = EventTrace([make_event(100)])
    trace.append(make_event(100))
    with pytest.raises(ReplayError):
        trace.append(make_event(99))


def test_duration():
    trace = EventTrace([make_event(100), make_event(500)])
    assert trace.duration_us == 400
    assert EventTrace().duration_us == 0


def test_shifted_moves_all_timestamps():
    trace = EventTrace([make_event(100), make_event(200)])
    shifted = trace.shifted(1000)
    assert [e.timestamp for e in shifted] == [1100, 1200]
    # Original untouched.
    assert [e.timestamp for e in trace] == [100, 200]


def test_touch_down_times_excludes_releases():
    trace = EventTrace([down(100), up(200), down(300, 6), up(400)])
    assert trace.touch_down_times() == [100, 300]


def test_counts_by_type():
    trace = EventTrace(
        [
            make_event(1),
            ev.InputEvent(2, PATH, ev.EV_SYN, ev.SYN_REPORT, 0),
            make_event(3),
        ]
    )
    assert trace.counts_by_type() == {ev.EV_ABS: 2, ev.EV_SYN: 1}


def test_save_and_load_roundtrip(tmp_path):
    trace = EventTrace([down(100), make_event(150), up(200)])
    path = tmp_path / "trace.getevent"
    trace.save(path)
    loaded = EventTrace.load(path)
    assert loaded.events == trace.events

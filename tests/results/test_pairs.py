"""IntPairs: array-backed storage, list semantics, lazy wire decode."""

import pytest

from repro.results.pairs import IntPairs

ROWS = [[0, 300000], [1500, 960000], [9000, 652800]]


def test_reads_like_a_list_of_tuples():
    pairs = IntPairs([(0, 1), (2, 3)])
    assert len(pairs) == 2
    assert list(pairs) == [(0, 1), (2, 3)]
    assert pairs[1] == (2, 3)
    assert list(pairs.firsts()) == [0, 2]
    assert list(pairs.seconds()) == [1, 3]
    assert IntPairs([(0, 1), (2, 3)]) == pairs


def test_from_lists_adopts_rows_without_decoding():
    pairs = IntPairs.from_lists([list(row) for row in ROWS])
    # Lazy: the raw wire rows are held, the arrays not yet built.
    assert pairs._rows is not None
    assert len(pairs) == len(ROWS)  # length needs no decode
    assert pairs._rows is not None
    # to_lists short-circuits straight off the wire form.
    assert pairs.to_lists() == ROWS
    assert pairs._rows is not None
    # First element access materialises once and frees the raw rows.
    assert pairs[0] == (0, 300000)
    assert pairs._rows is None
    assert list(pairs) == [tuple(row) for row in ROWS]


def test_lazy_and_eager_forms_are_equal():
    lazy = IntPairs.from_lists([list(row) for row in ROWS])
    eager = IntPairs(tuple(row) for row in ROWS)
    assert lazy == eager
    assert lazy.to_lists() == eager.to_lists()


def test_from_lists_on_non_list_falls_back_to_copy():
    source = IntPairs([(1, 2)])
    copied = IntPairs.from_lists(source)
    assert copied == source
    assert copied is not source


def test_malformed_rows_raise_at_first_access_not_adoption():
    pairs = IntPairs.from_lists([[1, 2], [3]])
    with pytest.raises((ValueError, TypeError, IndexError)):
        pairs[0]


def test_from_arrays_round_trip():
    source = IntPairs([(5, 6), (7, 8)])
    rebuilt = IntPairs.from_arrays(source.firsts(), source.seconds())
    assert rebuilt == source
    assert rebuilt.to_lists() == [[5, 6], [7, 8]]

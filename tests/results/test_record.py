"""Tests for the schema-versioned RunRecord and its wire/cache format."""

import json

import pytest

from repro.analysis.lagprofile import LagMeasurement
from repro.results import RUN_RECORD_SCHEMA_VERSION, RunRecord, RunRecordSchemaError


def make_record(**overrides):
    lags = tuple(
        LagMeasurement(
            lag_index=i,
            gesture_index=i,
            label=f"lag{i}",
            category="simple_frequent",
            begin_time_us=1_000_000 * (i + 1),
            end_frame=40 * (i + 1),
            duration_us=120_000 + i,
            threshold_us=1_000_000,
        )
        for i in range(3)
    )
    fields = dict(
        workload="03",
        config="ondemand",
        rep=2,
        duration_us=65_000_000,
        energy_j=12.345678901234567,
        dynamic_energy_j=3.2109876543210987,
        busy_us=7_654_321,
        transitions=[(0, 300_000), (1_234_567, 960_000)],
        busy_intervals=[(10, 500), (1_000, 9_999)],
        lags=lags,
    )
    fields.update(overrides)
    return RunRecord(**fields)


def test_json_roundtrip_is_lossless():
    record = make_record()
    again = RunRecord.loads(record.dumps())
    assert again == record
    # Floats must survive exactly — the bit-identical A/B depends on it.
    assert repr(again.energy_j) == repr(record.energy_j)
    assert again.transitions == record.transitions
    assert again.lags == record.lags


def test_row_is_pure_json():
    row = make_record().to_json_dict()
    text = json.dumps(row)
    assert json.loads(text)["schema_version"] == RUN_RECORD_SCHEMA_VERSION


def test_wrong_schema_version_rejected():
    row = make_record().to_json_dict()
    row["schema_version"] = RUN_RECORD_SCHEMA_VERSION + 1
    with pytest.raises(RunRecordSchemaError):
        RunRecord.from_json_dict(row)
    row.pop("schema_version")
    with pytest.raises(RunRecordSchemaError):
        RunRecord.from_json_dict(row)


def test_derived_views_match_fields():
    record = make_record()
    assert record.lag_profile.workload_name == "03"
    assert record.lag_profile.durations_us() == [l.duration_us for l in record.lags]
    assert record.busy_timeline.total_busy_us == 490 + 8_999
    assert record.busy_timeline is record.busy_timeline  # cached
    assert record.irritation_seconds() >= 0.0
    # The lazily-built timeline never affects equality.
    fresh = make_record()
    assert fresh == record


def test_cache_stores_json_rows_not_pickles(tmp_path):
    from repro.fleet.cache import ResultCache

    cache = ResultCache(tmp_path)
    record = make_record()
    cache.store("ab" + "0" * 62, record)
    path = cache.path_for("ab" + "0" * 62)
    assert path.suffix == ".json"
    row = json.loads(path.read_text(encoding="utf-8"))
    assert row["schema_version"] == RUN_RECORD_SCHEMA_VERSION
    assert cache.load("ab" + "0" * 62) == record


def test_cache_miss_on_stale_schema_version(tmp_path):
    """A row written under an older schema re-executes instead of loading."""
    from repro.fleet.cache import ResultCache

    cache = ResultCache(tmp_path)
    key = "cd" + "0" * 62
    cache.store(key, make_record())
    path = cache.path_for(key)
    row = json.loads(path.read_text(encoding="utf-8"))
    row["schema_version"] = RUN_RECORD_SCHEMA_VERSION - 1
    path.write_text(json.dumps(row), encoding="utf-8")
    assert cache.load(key) is None
    assert cache.misses == 1


def test_cache_key_depends_on_record_schema_version(tmp_path, monkeypatch):
    """Regression: bumping RUN_RECORD_SCHEMA_VERSION must move every cell's
    content address, so old entries become unreachable, not just unreadable."""
    import repro.fleet.cache as cache_mod
    from repro.fleet.cache import ResultCache
    from repro.fleet.spec import RunSpec

    cache = ResultCache(tmp_path)
    spec = RunSpec(dataset="03", config="ondemand", rep=0, master_seed=2014)
    fingerprint = "f" * 64
    key = cache.key_for(spec, fingerprint)
    monkeypatch.setattr(
        cache_mod, "RUN_RECORD_SCHEMA_VERSION", RUN_RECORD_SCHEMA_VERSION + 1
    )
    assert cache.key_for(spec, fingerprint) != key

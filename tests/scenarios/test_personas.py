"""Property-based tests (seeded, no hypothesis) for scenario generation.

Properties, checked over every persona and many seeds:

* same config string ⇒ byte-identical :class:`PlanStep` sequence,
  regardless of the harness RNG handed to the plan factory;
* distinct scenario seeds ⇒ distinct sequences;
* every generated step satisfies the ``PlanStep`` invariants and names
  only targets the live UI can resolve, for every persona × app-mix
  combination (vocabulary + index-range check here; actual end-to-end
  resolution is exercised by the recording in the golden scenario
  test).
"""

import itertools
import re
from random import Random

import pytest

from repro.scenarios.personas import (
    ACTIVITIES,
    PERSONAS,
    PlanState,
    persona_names,
    persona_plan,
)
from repro.workloads.datasets import dataset
from repro.workloads.sessions import KIND_SWIPE, KIND_TAP

STEPS = 300

# Everything the installed apps can resolve, per app: exact names and
# (prefix, max index) ranges mirroring the widget layouts.
NAV_TARGETS = {"nav:back", "nav:home", "dead"}
APPS = (
    "launcher gallery logoquiz pulse moviestudio messaging "
    "facebook gmail playstore calculator music"
).split()
TAP_VOCAB: dict[str, tuple[set, list]] = {
    "launcher": ({"widget", "dead"} | {f"icon:{a}" for a in APPS[1:]}, []),
    "gallery": (
        {"btn:edit", "btn:filter", "btn:save"} | NAV_TARGETS,
        [("album:", 7), ("photo:", 5)],
    ),
    "logoquiz": (
        {"btn:play", "btn:check"} | NAV_TARGETS | {f"key:{c}" for c in "abcdefghijklmnopqrstuvwxyz"},
        [("level:", 8)],
    ),
    "pulse": (NAV_TARGETS, [("story:", 23)]),
    "moviestudio": (
        {"btn:addclip", "btn:preview", "btn:export"} | NAV_TARGETS,
        [("clip:", 5)],
    ),
    "messaging": (
        {"btn:attach", "btn:send"} | NAV_TARGETS | {f"key:{c}" for c in "abcdefghijklmnopqrstuvwxyz"},
        [("thread:", 7), ("pick:", 5)],
    ),
    "facebook": (NAV_TARGETS, [("item:", 23)]),
    "gmail": (NAV_TARGETS, [("item:", 17)]),
    "calculator": (NAV_TARGETS | {f"key:{c}" for c in "0123456789+=./*-"}, []),
    "music": ({"btn:toggle"} | NAV_TARGETS, []),
}
SWIPE_VOCAB = {
    "pulse": {"scroll-up", "scroll-down", "pull-refresh"},
    "gallery": {"flip-next", "flip-prev"},
    "facebook": {"scroll-up", "scroll-down"},
    "gmail": {"scroll-up", "scroll-down"},
}


def _steps(persona_name: str, seed: int, count: int = STEPS):
    return list(
        itertools.islice(
            persona_plan(PERSONAS[persona_name], Random(seed)), count
        )
    )


def _assert_resolvable(step):
    if step.kind == KIND_SWIPE:
        allowed = SWIPE_VOCAB.get(step.app, set())
        assert step.target in allowed, (step.app, step.target)
        return
    exact, ranges = TAP_VOCAB[step.app]
    if step.target in exact:
        return
    for prefix, top in ranges:
        if step.target.startswith(prefix):
            index = int(step.target[len(prefix):])
            assert 0 <= index <= top, (step.app, step.target)
            return
    pytest.fail(f"unknown target {step.target!r} for app {step.app!r}")


@pytest.mark.parametrize("name", persona_names())
def test_same_seed_same_sequence(name):
    assert _steps(name, 7) == _steps(name, 7)


@pytest.mark.parametrize("name", persona_names())
def test_distinct_seeds_distinct_sequences(name):
    sequences = [tuple(_steps(name, seed, 120)) for seed in range(5)]
    assert len(set(sequences)) == len(sequences), name


@pytest.mark.parametrize("name", persona_names())
def test_steps_satisfy_invariants_and_vocabulary(name):
    for seed in (1, 2, 3):
        steps = _steps(name, seed)
        assert len(steps) == STEPS
        for step in steps:
            assert step.kind in (KIND_TAP, KIND_SWIPE)
            assert step.think_us >= 0
            assert step.app in APPS
            _assert_resolvable(step)


@pytest.mark.parametrize("name", persona_names())
def test_every_mix_activity_is_reachable(name):
    """Every activity in a persona's mix appears given enough steps."""
    persona = PERSONAS[name]
    seen = set()
    launched = {
        step.target
        for step in _steps(name, 9, 1500)
        if step.app == "launcher"
    }
    activity_markers = {
        "quiz": "icon:logoquiz",
        "chat": "icon:messaging",
        "photos": "icon:gallery",
        "video": "icon:moviestudio",
        "sums": "icon:calculator",
        "tunes": "icon:music",
    }
    for activity, _weight in persona.app_mix:
        if activity == "news":
            assert launched & {"icon:pulse", "widget"}, name
        elif activity == "feed":
            assert launched & {"icon:facebook", "icon:gmail"}, name
        else:
            assert activity_markers[activity] in launched, (name, activity)
        seen.add(activity)
    assert seen  # the mix is non-empty


def test_scenario_plan_ignores_harness_rng():
    """The plan is a pure function of the canonical config string."""
    spec = dataset("persona=mixed,seed=5,duration=2m")
    a = list(itertools.islice(spec.plan(Random(1)), 100))
    b = list(itertools.islice(spec.plan(Random(999)), 100))
    assert a == b


def test_persona_registry_shape():
    assert len(PERSONAS) >= 5
    for persona in PERSONAS.values():
        assert persona.app_mix, persona.name
        assert all(weight > 0 for _, weight in persona.app_mix), persona.name
        assert all(
            activity in ACTIVITIES for activity, _ in persona.app_mix
        ), persona.name
        assert persona.think_scale > 0
        assert 0 <= persona.spurious_rate <= 1
        low, high = persona.idle_gap_s
        assert 0 < low <= high


def test_moviestudio_selection_never_names_unimported_clip():
    """Clip taps must track the project state across visits."""
    persona = PERSONAS["creator"]
    for seed in range(4):
        state_clips = 0
        for step in itertools.islice(
            persona_plan(persona, Random(seed)), 600
        ):
            if step.app != "moviestudio":
                continue
            if step.target == "btn:addclip":
                state_clips = min(6, state_clips + 1)
            match = re.fullmatch(r"clip:(\d+)", step.target)
            if match:
                assert int(match.group(1)) < state_clips


def test_pulse_story_taps_stay_in_visible_window():
    """Story indices track the scroll offset the swipes produce."""
    for name in persona_names():
        rows = 0
        for step in itertools.islice(
            persona_plan(PERSONAS[name], Random(11)), 800
        ):
            if step.app != "pulse":
                continue
            if step.kind == KIND_SWIPE:
                if step.target == "scroll-up":
                    rows += 8
                elif step.target == "scroll-down":
                    rows -= 8
                elif step.target == "pull-refresh":
                    rows = 0
                continue
            match = re.fullmatch(r"story:(\d+)", step.target)
            if match:
                index = int(match.group(1))
                # The tracked window rows..rows+6 stays tappable even
                # when the list clamps at its maximum scroll.
                assert rows <= index <= min(23, rows + 6) or index == 23

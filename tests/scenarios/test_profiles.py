"""Tests for device profiles."""

import pytest

from repro.core.errors import WorkloadError
from repro.device.frequencies import snapdragon_8074_table
from repro.scenarios.profiles import (
    PROFILES,
    device_config_for,
    device_profile,
    frequency_table_for,
    profile_names,
)
from repro.workloads.datasets import dataset


def test_profile_registry_shape():
    assert len(PROFILES) >= 2
    assert "stock" in PROFILES
    for profile in PROFILES.values():
        table = profile.frequency_table()
        assert len(table) >= 2
        assert profile.screen_width > 0 and profile.screen_height > 0
        # PowerModel invariants enforced at construction.
        profile.power_model()


def test_stock_profile_is_the_papers_device():
    config = device_profile("stock").device_config()
    stock = snapdragon_8074_table()
    assert config.frequency_table.frequencies_khz == stock.frequencies_khz
    assert config.screen_width == 72
    assert config.screen_height == 128


def test_quad_ls_is_a_subset_of_the_stock_table():
    table = device_profile("quad_ls").frequency_table()
    stock = set(snapdragon_8074_table().frequencies_khz)
    assert set(table.frequencies_khz) < stock
    assert table.max_khz < snapdragon_8074_table().max_khz


def test_unknown_profile_one_line_error():
    with pytest.raises(WorkloadError) as excinfo:
        device_profile("octa_phantom")
    assert "\n" not in str(excinfo.value)


def test_tables_resolve_from_dataset_specs():
    named = dataset("03")
    assert (
        frequency_table_for(named).frequencies_khz
        == snapdragon_8074_table().frequencies_khz
    )
    scenario = dataset("persona=gamer,seed=1,duration=45s,profile=quad_ls")
    assert (
        frequency_table_for(scenario).frequencies_khz
        == device_profile("quad_ls").frequency_table().frequencies_khz
    )
    assert device_config_for(scenario).frequency_table.min_khz == 300_000


def test_profiles_are_deterministic():
    for name in profile_names():
        a = device_profile(name).device_config()
        b = device_profile(name).device_config()
        assert a.frequency_table.frequencies_khz == b.frequency_table.frequencies_khz
        assert a.power_model == b.power_model


def test_recording_and_replay_on_alternate_profile():
    """A scenario on quad_ls records at that table's floor and replays."""
    from repro.harness.experiment import record_workload, replay_run

    artifacts = record_workload(
        dataset("persona=messenger,seed=2,duration=45s,profile=quad_ls")
    )
    assert artifacts.input_count > 0
    table = frequency_table_for(artifacts.spec)
    result = replay_run(artifacts, f"fixed:{table.max_khz}")
    assert result.dynamic_energy_j > 0
    # Every DVFS state visited belongs to the profile's table.
    freqs = {khz for _t, khz in result.transitions}
    assert freqs <= set(table.frequencies_khz)

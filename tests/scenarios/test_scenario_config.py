"""Tests for the scenario config-string grammar."""

import pytest

from repro.core.errors import WorkloadError
from repro.scenarios.config import (
    ScenarioSpec,
    canonical_scenario,
    format_duration,
    is_scenario_name,
    parse_duration,
    parse_scenario,
)


def test_full_spec_parses():
    spec = parse_scenario("persona=gamer,seed=7,duration=10m,profile=quad_ls")
    assert spec == ScenarioSpec("gamer", 7, 600_000_000, "quad_ls")


def test_defaults_fill_in():
    spec = parse_scenario("persona=reader")
    assert spec.seed == 0
    assert spec.duration_us == 600_000_000
    assert spec.profile == "stock"


def test_canonical_is_stable_and_order_insensitive():
    spellings = [
        "persona=gamer,seed=7,duration=2m",
        "seed=7,persona=gamer,duration=120s",
        " persona = gamer , duration=2m, seed=7 ",
        "duration=2m,profile=stock,seed=7,persona=gamer",
    ]
    canon = {canonical_scenario(s) for s in spellings}
    assert canon == {"persona=gamer,seed=7,duration=2m,profile=stock"}
    # Canonicalisation is idempotent.
    only = canon.pop()
    assert canonical_scenario(only) == only


def test_duration_units():
    assert parse_duration("45s") == 45_000_000
    assert parse_duration("2m") == 120_000_000
    assert parse_duration("1h") == 3_600_000_000
    assert format_duration(120_000_000) == "2m"
    assert format_duration(90_000_000) == "90s"
    assert format_duration(3_600_000_000) == "1h"


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "gamer",
        "persona=",
        "persona=gamer,persona=gamer",
        "persona=gamer,flavour=salty",
        "persona=nobody",
        "persona=gamer,profile=octa_phantom",
        "persona=gamer,seed=seven",
        "persona=gamer,duration=10",
        "persona=gamer,duration=0m",
        "persona=gamer,duration=-2m",
        "seed=7,duration=2m",
    ],
)
def test_malformed_specs_raise_one_line_errors(bad):
    with pytest.raises(WorkloadError) as excinfo:
        parse_scenario(bad)
    assert "\n" not in str(excinfo.value)


def test_is_scenario_name():
    assert is_scenario_name("persona=gamer,seed=1")
    assert not is_scenario_name("03")
    assert not is_scenario_name("24hour")

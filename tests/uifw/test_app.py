"""Tests for the App base class: launch, resume, splash, affordances."""

import pytest

from repro.core.errors import SimulationError
from repro.core.simtime import seconds
from repro.uifw.app import App


def launch_app(phone, name, at=1):
    device, wm = phone
    launcher = wm.app("launcher")
    device.touchscreen.schedule_tap(
        seconds(at), launcher.tap_target(f"icon:{name}")
    )


def test_unattached_app_rejects_context_access():
    app = App()
    with pytest.raises(SimulationError):
        _ = app.context


def test_default_tap_target_rejected(phone):
    _device, wm = phone
    with pytest.raises(SimulationError):
        wm.app("music").tap_target("nonexistent")
    with pytest.raises(SimulationError):
        wm.app("music").swipe_target("nonexistent")


def test_cold_start_shows_splash_then_app(phone):
    device, wm = phone
    device.set_governor("fixed:300000")
    pulse = wm.app("pulse")
    launch_app(phone, "pulse")
    device.run_for(seconds(2))
    # Mid-launch: the splash loading view is what the user sees.
    assert wm.foreground is pulse
    assert pulse.view.name == "pulse:splash"
    device.run_for(seconds(8))
    assert pulse.launched
    assert pulse.view.name == "pulse:feed"


def test_resume_switches_only_at_completion(phone):
    device, wm = phone
    device.set_governor("fixed:300000")
    launch_app(phone, "calculator")
    device.run_for(seconds(6))
    # Go home, then resume.
    device.touchscreen.schedule_tap(device.engine.now, wm.home_button_point())
    device.run_for(seconds(2))
    assert wm.foreground is wm.app("launcher")
    launch_app(phone, "calculator", at=device.engine.now // 1_000_000 + 1)
    # Immediately after the tap the launcher is still on screen (the
    # resume render has not completed at 0.30 GHz).
    device.run_for(seconds(1) + 50_000)
    assert wm.foreground is wm.app("launcher")
    device.run_for(seconds(2))
    assert wm.foreground is wm.app("calculator")


def test_resume_is_faster_than_cold_start(phone):
    device, wm = phone
    device.set_governor("fixed:960000")
    launch_app(phone, "gallery", at=1)
    device.run_for(seconds(6))
    cold = wm.journal.interactions[0]
    device.touchscreen.schedule_tap(device.engine.now, wm.home_button_point())
    device.run_for(seconds(2))
    launch_app(phone, "gallery", at=device.engine.now // 1_000_000 + 1)
    device.run_for(seconds(4))
    warm = [
        r
        for r in wm.journal.interactions
        if r.label == "launcher:launch:gallery"
    ][-1]
    assert warm.duration_us < cold.duration_us / 4


def test_label_defaults_to_name(phone):
    _device, wm = phone
    assert wm.app("gallery").label() == "gallery"


def test_screen_size_matches_display(phone):
    _device, wm = phone
    assert wm.app("gallery").screen_size() == (72, 128)

"""Unit tests for canvas drawing."""

import numpy as np
import pytest

from repro.core.geometry import Rect
from repro.uifw.drawing import Canvas, digits_bounds, texture


@pytest.fixture
def canvas():
    return Canvas(np.zeros((32, 24), dtype=np.uint8))


def test_texture_is_deterministic():
    assert np.array_equal(texture("key", 8, 8), texture("key", 8, 8))


def test_texture_differs_per_key():
    assert not np.array_equal(texture("a", 8, 8), texture("b", 8, 8))


def test_texture_is_cached():
    assert texture("cache-me", 4, 4) is texture("cache-me", 4, 4)


def test_fill_rect(canvas):
    canvas.fill_rect(Rect(2, 3, 4, 5), 200)
    assert np.all(canvas.buffer[3:8, 2:6] == 200)
    assert canvas.buffer[2, 2] == 0


def test_fill_rect_clips_to_canvas(canvas):
    canvas.fill_rect(Rect(20, 28, 10, 10), 99)
    assert np.all(canvas.buffer[28:, 20:] == 99)


def test_frame_rect_draws_border_only(canvas):
    canvas.frame_rect(Rect(1, 1, 5, 5), 50)
    assert canvas.buffer[1, 1] == 50
    assert canvas.buffer[5, 5] == 50
    assert canvas.buffer[3, 3] == 0


def test_blit_texture_matches_texture(canvas):
    canvas.blit_texture(Rect(0, 0, 6, 6), "blit")
    assert np.array_equal(canvas.buffer[:6, :6], texture("blit", 6, 6))


def test_blit_texture_partially_offscreen(canvas):
    canvas.blit_texture(Rect(20, 0, 10, 4), "edge")
    # Only the on-screen sub-block is drawn, with matching texels.
    assert np.array_equal(
        canvas.buffer[:4, 20:24], texture("edge", 10, 4)[:, :4]
    )


def test_draw_digits_changes_pixels_per_minute(canvas):
    canvas.draw_digits(2, 2, "10:00", 255)
    first = canvas.buffer.copy()
    canvas.fill(0)
    canvas.draw_digits(2, 2, "10:01", 255)
    assert not np.array_equal(first, canvas.buffer)


def test_digit_bounds_match_drawing(canvas):
    bounds = canvas.draw_digits(2, 2, "12:34")
    assert bounds == digits_bounds(2, 2, "12:34")
    assert bounds.w == 4 * 5

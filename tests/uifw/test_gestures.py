"""Unit tests for the gesture decoder."""

import pytest

from repro.core import events as ev
from repro.uifw.gestures import GestureDecoder, Swipe, Tap

PATH = "/dev/input/event1"


def feed(decoder, triples):
    """Feed (time, code, value) EV_ABS triples plus SYN terminators."""
    for timestamp, code, value in triples:
        if code == "SYN":
            decoder.on_event(
                ev.InputEvent(timestamp, PATH, ev.EV_SYN, ev.SYN_REPORT, 0)
            )
        else:
            decoder.on_event(
                ev.InputEvent(timestamp, PATH, ev.EV_ABS, code, value)
            )


def tap_events(down=1000, up=71_000, x=30, y=40):
    return [
        (down, ev.ABS_MT_TRACKING_ID, 5),
        (down, ev.ABS_MT_POSITION_X, x),
        (down, ev.ABS_MT_POSITION_Y, y),
        (down, "SYN", 0),
        (up, ev.ABS_MT_TRACKING_ID, ev.TRACKING_ID_NONE),
        (up, "SYN", 0),
    ]


def test_decodes_tap():
    gestures = []
    decoder = GestureDecoder(gestures.append)
    feed(decoder, tap_events())
    assert len(gestures) == 1
    tap = gestures[0]
    assert isinstance(tap, Tap)
    assert tap.point.x == 30 and tap.point.y == 40
    assert tap.down_time == 1000 and tap.up_time == 71_000


def test_decodes_swipe_with_moves():
    gestures = []
    decoder = GestureDecoder(gestures.append)
    events = [
        (0, ev.ABS_MT_TRACKING_ID, 5),
        (0, ev.ABS_MT_POSITION_X, 36),
        (0, ev.ABS_MT_POSITION_Y, 100),
        (0, "SYN", 0),
        (50_000, ev.ABS_MT_POSITION_X, 36),
        (50_000, ev.ABS_MT_POSITION_Y, 60),
        (50_000, "SYN", 0),
        (100_000, ev.ABS_MT_POSITION_X, 36),
        (100_000, ev.ABS_MT_POSITION_Y, 20),
        (100_000, "SYN", 0),
        (150_000, ev.ABS_MT_TRACKING_ID, ev.TRACKING_ID_NONE),
        (150_000, "SYN", 0),
    ]
    feed(decoder, events)
    swipe = gestures[0]
    assert isinstance(swipe, Swipe)
    assert swipe.start.y == 100 and swipe.end.y == 20
    assert swipe.delta_y == -80


def test_tiny_movement_still_a_tap():
    gestures = []
    decoder = GestureDecoder(gestures.append)
    events = [
        (0, ev.ABS_MT_TRACKING_ID, 5),
        (0, ev.ABS_MT_POSITION_X, 30),
        (0, ev.ABS_MT_POSITION_Y, 40),
        (0, "SYN", 0),
        (30_000, ev.ABS_MT_POSITION_X, 32),
        (30_000, ev.ABS_MT_POSITION_Y, 41),
        (30_000, "SYN", 0),
        (60_000, ev.ABS_MT_TRACKING_ID, ev.TRACKING_ID_NONE),
        (60_000, "SYN", 0),
    ]
    feed(decoder, events)
    assert isinstance(gestures[0], Tap)


def test_release_without_position_is_ignored():
    gestures = []
    decoder = GestureDecoder(gestures.append)
    feed(
        decoder,
        [
            (0, ev.ABS_MT_TRACKING_ID, 5),
            (0, "SYN", 0),
            (50_000, ev.ABS_MT_TRACKING_ID, ev.TRACKING_ID_NONE),
            (50_000, "SYN", 0),
        ],
    )
    assert gestures == []
    assert decoder.gestures_decoded == 0


def test_consecutive_gestures_decode_independently():
    gestures = []
    decoder = GestureDecoder(gestures.append)
    feed(decoder, tap_events(down=0, up=60_000))
    feed(decoder, tap_events(down=200_000, up=260_000, x=10, y=10))
    assert len(gestures) == 2
    assert gestures[1].point.x == 10

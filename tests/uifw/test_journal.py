"""Unit tests for the ground-truth journal."""

import pytest

from repro.core.errors import SimulationError
from repro.uifw.journal import GroundTruthJournal


@pytest.fixture
def journal():
    return GroundTruthJournal()


def dispatch_gesture(journal, kind="tap", down=1000):
    note = journal.note_gesture(kind, down)
    return note


def test_gesture_indices_increment(journal):
    a = dispatch_gesture(journal)
    journal.gesture_dispatched(True)
    b = dispatch_gesture(journal)
    assert (a.index, b.index) == (0, 1)


def test_interaction_begin_is_gesture_down_time(journal):
    dispatch_gesture(journal, down=5000)
    token = journal.open_interaction("x", "common", journal.current_down_time())
    assert token.record.begin_time == 5000


def test_open_outside_dispatch_rejected(journal):
    with pytest.raises(SimulationError):
        journal.open_interaction("x", "common", 0)


def test_one_interaction_per_gesture(journal):
    dispatch_gesture(journal)
    journal.open_interaction("x", "common", 0)
    with pytest.raises(SimulationError):
        journal.open_interaction("y", "common", 0)


def test_complete_records_end_time(journal):
    dispatch_gesture(journal)
    token = journal.open_interaction("x", "common", 1000)
    token.complete(9000)
    assert token.record.end_time == 9000
    assert token.record.duration_us == 8000


def test_double_complete_rejected(journal):
    dispatch_gesture(journal)
    token = journal.open_interaction("x", "common", 1000)
    token.complete(2000)
    with pytest.raises(SimulationError):
        token.complete(3000)


def test_spurious_gesture_tracking(journal):
    dispatch_gesture(journal)
    journal.open_interaction("x", "common", 0)
    journal.gesture_dispatched(True)
    dispatch_gesture(journal)  # no interaction
    journal.gesture_dispatched(False)
    assert journal.spurious_gesture_indices() == [1]


def test_mask_provider_snapshot_at_completion(journal):
    regions = ["rect-a"]
    journal.mask_provider = lambda: regions
    dispatch_gesture(journal)
    token = journal.open_interaction("x", "common", 0)
    regions.append("rect-b")
    token.complete(100)
    assert token.record.mask_rects == ["rect-a", "rect-b"]


def test_completion_listener_fires(journal):
    completed = []
    journal.completion_listener = completed.append
    dispatch_gesture(journal)
    token = journal.open_interaction("x", "common", 0)
    token.complete(100)
    assert completed == [token.record]


def test_incomplete_duration_raises(journal):
    dispatch_gesture(journal)
    token = journal.open_interaction("x", "common", 0)
    with pytest.raises(SimulationError):
        _ = token.record.duration_us

"""Integration-style tests for the window manager and views."""

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.core.simtime import seconds
from repro.device.display import VSYNC_PERIOD_US


def test_home_app_is_foreground(phone):
    _device, wm = phone
    assert wm.foreground is wm.app("launcher")


def test_duplicate_install_rejected(phone):
    from repro.apps.launcher import LauncherApp

    _device, wm = phone
    with pytest.raises(SimulationError):
        wm.install(LauncherApp())


def test_unknown_app_rejected(phone):
    _device, wm = phone
    with pytest.raises(SimulationError):
        wm.app("does-not-exist")


def test_tap_on_icon_dispatches_and_journals(phone):
    device, wm = phone
    device.set_governor("fixed:960000")
    launcher = wm.app("launcher")
    device.touchscreen.schedule_tap(
        seconds(1), launcher.tap_target("icon:gallery")
    )
    device.run_for(seconds(5))
    assert wm.foreground is wm.app("gallery")
    assert wm.journal.gestures[0].consumed
    assert wm.journal.interactions[0].label == "launcher:launch:gallery"


def test_dead_tap_is_spurious(phone):
    device, wm = phone
    device.set_governor("fixed:960000")
    launcher = wm.app("launcher")
    device.touchscreen.schedule_tap(seconds(1), launcher.tap_target("dead"))
    device.run_for(seconds(2))
    assert wm.journal.spurious_gesture_indices() == [0]


def test_nav_home_switches_back_with_interaction(phone):
    device, wm = phone
    device.set_governor("fixed:960000")
    launcher = wm.app("launcher")
    device.touchscreen.schedule_tap(
        seconds(1), launcher.tap_target("icon:music")
    )
    device.engine.schedule_at(
        seconds(5),
        lambda: device.touchscreen.schedule_tap(
            seconds(6), wm.home_button_point()
        ),
    )
    device.run_for(seconds(9))
    assert wm.foreground is launcher
    labels = [r.label for r in wm.journal.interactions]
    assert "nav:home" in labels
    assert all(r.complete for r in wm.journal.interactions)


def test_minute_tick_recomposes_for_clock(phone):
    device, _wm = phone
    before = device.display.frames_composed
    device.run_for(seconds(121))
    # At least the two minute boundaries must have composed frames.
    assert device.display.frames_composed >= before + 2


def test_composition_contains_status_bar_and_navbar(phone):
    device, wm = phone
    device.display.compose_now()
    framebuffer = device.display.framebuffer
    assert np.any(framebuffer[: wm.status_bar.rect.h, :] > 0)
    assert np.any(framebuffer[wm.nav_bar_rect.y :, :] > 0)


def test_dynamic_regions_include_clock(phone):
    _device, wm = phone
    regions = wm._dynamic_regions()
    assert wm.status_bar.clock_rect in regions


def test_animation_hold_drives_recomposition(phone):
    device, wm = phone
    wm.hold_animation()
    start = device.display.frames_composed
    device.run_for(seconds(1))
    wm.release_animation()
    assert device.display.frames_composed - start >= 8


def test_release_without_hold_rejected(phone):
    _device, wm = phone
    with pytest.raises(SimulationError):
        wm.release_animation()


def test_aftermath_work_submitted_on_completion(phone):
    device, wm = phone
    device.set_governor("fixed:2150400")
    launcher = wm.app("launcher")
    device.touchscreen.schedule_tap(
        seconds(1), launcher.tap_target("icon:calculator")
    )
    device.run_for(seconds(3))
    # The launch interaction completed and left background aftermath work.
    assert wm.journal.interactions[0].complete
    assert device.scheduler.completed_cycles > 0

"""Unit tests for widgets."""

import numpy as np
import pytest

from repro.core.geometry import Point, Rect
from repro.uifw.drawing import Canvas
from repro.uifw.widgets import (
    Button,
    Keyboard,
    ListView,
    ProgressBar,
    Spinner,
    StatusBar,
    TextField,
)


def render(widget, now=0, shape=(128, 72)):
    canvas = Canvas(np.zeros(shape, dtype=np.uint8))
    widget.draw(canvas, now)
    return canvas.buffer


class TestStatusBar:
    def test_clock_changes_each_minute(self):
        bar = StatusBar(72)
        assert not np.array_equal(
            render(bar, now=0), render(bar, now=60_000_000)
        )

    def test_clock_stable_within_minute(self):
        bar = StatusBar(72)
        assert np.array_equal(
            render(bar, now=1_000_000), render(bar, now=59_000_000)
        )

    def test_clock_rect_covers_the_changing_pixels(self):
        bar = StatusBar(72)
        a, b = render(bar, now=0), render(bar, now=60_000_000)
        diff_rows, diff_cols = np.nonzero(a != b)
        rect = bar.clock_rect
        assert all(rect.y <= r < rect.bottom for r in diff_rows)
        assert all(rect.x <= c < rect.right for c in diff_cols)


class TestTextField:
    def test_cursor_blinks(self):
        field = TextField(Rect(2, 2, 40, 9))
        field.focused = True
        assert not np.array_equal(
            render(field, now=0), render(field, now=500_000)
        )

    def test_content_changes_pixels(self):
        field = TextField(Rect(2, 2, 40, 9))
        empty = render(field)
        field.append("a")
        assert not np.array_equal(empty, render(field))

    def test_cursor_rect_moves_with_content(self):
        field = TextField(Rect(2, 2, 40, 9))
        before = field.cursor_rect
        field.append("ab")
        after = field.cursor_rect
        assert after.x == before.x + 2

    def test_clear_resets(self):
        field = TextField(Rect(2, 2, 40, 9))
        field.append("abc")
        field.clear()
        assert field.content == ""


class TestKeyboard:
    def test_every_key_hit_tests_to_itself(self):
        keyboard = Keyboard(72, 118)
        for row in Keyboard.ROWS:
            for char in row:
                center = keyboard.key_rect(char).center
                assert keyboard.key_at(center) == char

    def test_point_outside_returns_none(self):
        keyboard = Keyboard(72, 118)
        assert keyboard.key_at(Point(0, 0)) is None


class TestListView:
    def make(self):
        return ListView(Rect(0, 10, 72, 104), [f"i{k}" for k in range(24)], 14)

    def test_scroll_clamps_at_bounds(self):
        view = self.make()
        assert view.scroll_by(-50) == 0
        view.scroll_by(10_000)
        assert view.scroll_px == view.max_scroll

    def test_item_at_respects_scroll(self):
        view = self.make()
        assert view.item_at(Point(30, 12)) == 0
        view.scroll_by(28)
        assert view.item_at(Point(30, 12)) == 2

    def test_item_at_outside_rect(self):
        view = self.make()
        assert view.item_at(Point(30, 5)) is None

    def test_scroll_changes_rendering(self):
        view = self.make()
        before = render(view)
        view.scroll_by(28)
        assert not np.array_equal(before, render(view))


class TestProgressAndSpinner:
    def test_progress_fraction_changes_pixels(self):
        bar = ProgressBar(Rect(4, 4, 50, 6))
        bar.fraction = 0.2
        a = render(bar)
        bar.fraction = 0.8
        assert not np.array_equal(a, render(bar))

    def test_spinner_animates_over_time(self):
        spinner = Spinner(Rect(4, 4, 12, 12))
        spinner.active = True
        assert not np.array_equal(
            render(spinner, now=0), render(spinner, now=100_000)
        )

    def test_inactive_spinner_draws_nothing(self):
        spinner = Spinner(Rect(4, 4, 12, 12))
        assert np.all(render(spinner) == 0)


class TestButton:
    def test_disabled_button_not_tappable(self):
        button = Button(Rect(2, 2, 20, 10), "go")
        button.enabled = False
        assert not button.hit_test(Point(5, 5))

    def test_enabled_button_tappable(self):
        button = Button(Rect(2, 2, 20, 10), "go")
        assert button.hit_test(Point(5, 5))

"""Tests for the dataset plan generators."""

import itertools
import random

import pytest

from repro.core.errors import WorkloadError
from repro.workloads.datasets import DATASETS, dataset, dataset_names


def test_table1_datasets_present():
    assert dataset_names() == ["01", "02", "03", "04", "05"]
    assert dataset_names(include_day=True)[-1] == "24hour"


def test_unknown_dataset_rejected():
    with pytest.raises(WorkloadError):
        dataset("99")


def test_descriptions_match_table1():
    assert "Gallery" in dataset("01").description
    assert "Logo Quiz" in dataset("02").description
    assert "messaging" in dataset("03").description
    assert "Movie Studio" in dataset("04").description
    assert "Pulse News" in dataset("05").description


def test_ten_minute_durations():
    for name in dataset_names():
        assert dataset(name).duration_us == 600_000_000


def test_day_duration():
    assert dataset("24hour").duration_us == 24 * 3600 * 1_000_000


def test_plans_are_deterministic_per_seed():
    for name in dataset_names(include_day=True):
        spec = dataset(name)
        a = list(itertools.islice(spec.plan(random.Random(7)), 40))
        b = list(itertools.islice(spec.plan(random.Random(7)), 40))
        assert a == b, name


def test_plans_differ_across_seeds():
    spec = dataset("01")
    a = list(itertools.islice(spec.plan(random.Random(1)), 40))
    b = list(itertools.islice(spec.plan(random.Random(2)), 40))
    assert a != b


def test_dataset02_is_typing_dominated():
    steps = list(itertools.islice(dataset("02").plan(random.Random(3)), 120))
    keys = [s for s in steps if s.target.startswith("key:")]
    assert len(keys) > len(steps) // 2


def test_dataset05_mixes_taps_and_swipes():
    steps = list(itertools.islice(dataset("05").plan(random.Random(3)), 120))
    kinds = {s.kind for s in steps}
    assert kinds == {"tap", "swipe"}


def test_day_plan_has_long_idle_gaps():
    steps = list(itertools.islice(dataset("24hour").plan(random.Random(3)), 80))
    assert max(s.think_us for s in steps) > 20 * 60 * 1_000_000


def test_every_plan_includes_spurious_taps():
    for name in dataset_names():
        steps = list(
            itertools.islice(dataset(name).plan(random.Random(11)), 300)
        )
        assert any(s.target == "dead" for s in steps), name

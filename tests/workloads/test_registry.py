"""Workload registry: named datasets and scenarios interchangeable.

Includes the regression for the old event-count tuning assumption: the
duration/count checks are driven by each spec in the registry, so a
synthesized scenario (``target_inputs=None``, arbitrary duration) passes
the same validation gate the five tuned datasets do.
"""

import pytest

from repro.core.errors import WorkloadError
from repro.core.simtime import minutes, seconds
from repro.workloads.datasets import (
    DatasetSpec,
    check_recording,
    dataset,
    dataset_names,
    register_dataset,
    unregister_dataset,
)


def test_scenario_strings_resolve_like_datasets():
    spec = dataset("persona=gamer,seed=7,duration=2m")
    assert spec.name == "persona=gamer,seed=7,duration=2m,profile=stock"
    assert spec.duration_us == 120_000_000
    assert spec.target_inputs is None
    # Any spelling resolves to the same canonical spec.
    respelled = dataset("seed=7,persona=gamer,duration=120s")
    assert respelled.name == spec.name


def test_unknown_names_still_rejected():
    with pytest.raises(WorkloadError):
        dataset("99")
    with pytest.raises(WorkloadError):
        dataset("persona=nobody,seed=1")


def test_register_and_unregister_custom_dataset():
    spec = DatasetSpec(
        name="custom-empty",
        description="Zero-input session for edge-case tests.",
        duration_us=seconds(5),
        plan_factory=lambda rng: iter(()),
    )
    register_dataset(spec)
    try:
        assert dataset("custom-empty") is spec
        with pytest.raises(WorkloadError):
            register_dataset(spec)  # duplicate without replace
        register_dataset(spec, replace=True)
    finally:
        unregister_dataset("custom-empty")
    with pytest.raises(WorkloadError):
        dataset("custom-empty")


def test_dataset_names_are_registry_driven():
    assert dataset_names() == ["01", "02", "03", "04", "05"]
    assert dataset_names(include_day=True)[-1] == "24hour"
    extra = DatasetSpec(
        name="zz-extra",
        description="Registered short workload.",
        duration_us=minutes(5),
        plan_factory=lambda rng: iter(()),
    )
    register_dataset(extra)
    try:
        assert "zz-extra" in dataset_names()
        assert "zz-extra" in dataset_names(include_day=True)
    finally:
        unregister_dataset("zz-extra")


def test_check_recording_is_data_driven():
    tuned = dataset("02")  # target_inputs=149
    check_recording(tuned, 149, tuned.duration_us)
    check_recording(tuned, 60, tuned.duration_us)  # inside the 3x band
    with pytest.raises(WorkloadError):
        check_recording(tuned, 3, tuned.duration_us)  # broken plan
    with pytest.raises(WorkloadError):
        check_recording(tuned, 149, tuned.duration_us - 1)  # short recording

    # Regression: a spec without tuned counts (synthesized scenarios,
    # registered custom workloads) passes with any count.
    scenario = dataset("persona=reader,seed=1,duration=45s")
    check_recording(scenario, 0, scenario.duration_us)
    check_recording(scenario, 10_000, scenario.duration_us + 5)


def test_synthesized_scenario_recording_passes_validation():
    """End to end: recording a scenario does not trip workload checks."""
    from repro.harness.experiment import record_workload

    artifacts = record_workload(dataset("persona=gamer,seed=5,duration=45s"))
    assert artifacts.duration_us >= artifacts.spec.duration_us
    assert artifacts.input_count > 0

"""Tests for the scripted user."""

import pytest

from repro.apps import install_standard_apps
from repro.core.errors import WorkloadError
from repro.core.simtime import seconds
from repro.device.device import Device
from repro.uifw.view import WindowManager
from repro.workloads.sessions import (
    KIND_SWIPE,
    KIND_TAP,
    PlanStep,
    ScriptedUser,
)


def make_phone():
    device = Device()
    wm = WindowManager(device)
    install_standard_apps(wm)
    device.set_governor("fixed:300000")
    return device, wm


def test_plan_step_validation():
    with pytest.raises(WorkloadError):
        PlanStep("poke", "launcher", "dead", 0)
    with pytest.raises(WorkloadError):
        PlanStep(KIND_TAP, "launcher", "dead", -1)


def test_user_waits_for_completion_before_next_step():
    device, wm = make_phone()
    plan = iter(
        [
            PlanStep(KIND_TAP, "launcher", "icon:gallery", seconds(1)),
            PlanStep(KIND_TAP, "gallery", "album:0", seconds(1)),
        ]
    )
    user = ScriptedUser(wm, plan, seconds(120))
    user.start()
    device.run_for(seconds(60))
    assert user.steps_performed == 2
    launch, album = wm.journal.interactions
    # The album tap came only after the launch visibly completed.
    assert album.begin_time >= launch.end_time
    assert album.complete


def test_user_stops_at_deadline():
    device, wm = make_phone()

    def endless():
        while True:
            yield PlanStep(KIND_TAP, "launcher", "dead", seconds(1))

    user = ScriptedUser(wm, endless(), stop_initiating_after_us=seconds(5))
    user.start(on_finished=lambda: None)
    device.run_for(seconds(30))
    assert user.finished
    # ~4 taps fit into five seconds of 1 s think + settle time.
    assert 2 <= user.steps_performed <= 5


def test_user_finishes_when_plan_exhausts():
    device, wm = make_phone()
    finished = []
    user = ScriptedUser(
        wm,
        iter([PlanStep(KIND_TAP, "launcher", "dead", seconds(1))]),
        seconds(100),
    )
    user.start(on_finished=lambda: finished.append(device.engine.now))
    device.run_for(seconds(30))
    assert user.finished and finished


def test_swipe_steps_resolve_via_swipe_target():
    device, wm = make_phone()
    plan = iter(
        [
            PlanStep(KIND_TAP, "launcher", "icon:pulse", seconds(1)),
            PlanStep(KIND_SWIPE, "pulse", "scroll-up", seconds(2)),
        ]
    )
    user = ScriptedUser(wm, plan, seconds(300))
    user.start()
    device.run_for(seconds(60))
    assert wm.journal.gestures[-1].kind == "swipe"
    assert wm.app("pulse")._feed.scroll_px > 0


def test_nav_targets_resolve():
    device, wm = make_phone()
    plan = iter(
        [
            PlanStep(KIND_TAP, "launcher", "icon:music", seconds(1)),
            PlanStep(KIND_TAP, "music", "nav:home", seconds(2)),
        ]
    )
    ScriptedUser(wm, plan, seconds(300)).start()
    device.run_for(seconds(60))
    assert wm.foreground is wm.app("launcher")
